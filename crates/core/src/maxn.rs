//! Per-link prioritized gradient exchange (§3.3).
//!
//! Two cooperating modules:
//!
//! * **Data quality assurance** — the *Max N* algorithm: per weight
//!   variable, select gradient entries whose absolute value is within `N%`
//!   of that variable's maximum absolute value (implemented in
//!   `dlion_tensor::sparse`).
//! * **Transmission speed assurance** — per link, per iteration, find the
//!   *largest* `N` whose selection fits the link's byte budget
//!   `BW_net_j × iteration_time` (the data the link can carry while one
//!   iteration runs, shared across the n−1 peer links of the NIC).
//!
//! [`MaxNPlanner`] makes the inversion cheap: it pre-sorts each variable's
//! gradient magnitudes once per iteration, after which counting the
//! selection size for any `N` is a handful of binary searches, and the
//! largest admissible `N` is found by bisection over `[min_n, 100]`.

use dlion_tensor::sparse::{max_n_select_model, SparseVec};
use dlion_tensor::Tensor;

/// Precomputed per-variable magnitude tables for one iteration's gradients.
///
/// ```
/// use dlion_core::MaxNPlanner;
/// use dlion_tensor::{DetRng, Shape, Tensor};
///
/// let mut rng = DetRng::seed_from_u64(1);
/// let grads = vec![Tensor::randn(Shape::d1(1000), 1.0, &mut rng)];
/// let planner = MaxNPlanner::new(&grads);
///
/// // A 100-entry link budget inverts to the largest admissible N...
/// let n = planner.n_for_entry_budget(100, 0.85);
/// assert!(planner.count_for_n(n) <= 100);
/// // ...and an unconstrained link ships the dense gradient (N = 100).
/// assert_eq!(planner.n_for_entry_budget(usize::MAX, 0.85), 100.0);
/// ```
pub struct MaxNPlanner {
    /// Per variable: |g| sorted ascending.
    sorted_abs: Vec<Vec<f32>>,
    /// Per variable: max |g|.
    max_abs: Vec<f32>,
    total_entries: usize,
}

impl MaxNPlanner {
    /// Build from one model gradient (one tensor per weight variable).
    pub fn new(grads: &[Tensor]) -> Self {
        let mut sorted_abs = Vec::with_capacity(grads.len());
        let mut max_abs = Vec::with_capacity(grads.len());
        let mut total = 0;
        for g in grads {
            let mut abs: Vec<f32> = g.data().iter().map(|x| x.abs()).collect();
            abs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            max_abs.push(abs.last().copied().unwrap_or(0.0));
            total += abs.len();
            sorted_abs.push(abs);
        }
        MaxNPlanner {
            sorted_abs,
            max_abs,
            total_entries: total,
        }
    }

    /// Total gradient entries across all variables.
    pub fn total_entries(&self) -> usize {
        self.total_entries
    }

    /// How many entries Max N selects at parameter `n` (0 < n <= 100).
    pub fn count_for_n(&self, n: f64) -> usize {
        if n >= 100.0 {
            return self.total_entries;
        }
        let frac = 1.0 - n / 100.0;
        let mut count = 0;
        for (abs, &mx) in self.sorted_abs.iter().zip(&self.max_abs) {
            if mx == 0.0 {
                continue;
            }
            let thr = (frac * mx as f64) as f32;
            // Number of entries with |g| >= thr (excluding exact zeros,
            // matching `from_dense_threshold`).
            let idx = abs.partition_point(|&v| v < thr);
            let nonzero_from = abs.partition_point(|&v| v <= 0.0);
            count += abs.len() - idx.max(nonzero_from);
        }
        count
    }

    /// The largest `N ∈ [min_n, 100]` whose selection fits `budget_entries`
    /// entries. Returns `min_n` when even the minimum overflows (the
    /// data-quality floor the paper sets with "minimum N = 0.85").
    pub fn n_for_entry_budget(&self, budget_entries: usize, min_n: f64) -> f64 {
        let min_n = min_n.clamp(1e-6, 100.0);
        if self.count_for_n(100.0) <= budget_entries {
            return 100.0;
        }
        if self.count_for_n(min_n) > budget_entries {
            return min_n;
        }
        // Bisect the monotone count(N) function.
        let (mut lo, mut hi) = (min_n, 100.0);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.count_for_n(mid) <= budget_entries {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Materialize the Max N selection of `grads` at parameter `n`.
    pub fn select(&self, grads: &[Tensor], n: f64) -> Vec<SparseVec> {
        assert_eq!(grads.len(), self.sorted_abs.len());
        max_n_select_model(grads, n)
    }

    /// Convenience: plan and select for a link byte budget. Returns
    /// `(n, selection, selected_entries)`.
    pub fn select_for_budget(
        &self,
        grads: &[Tensor],
        budget_bytes: f64,
        bytes_per_entry: f64,
        min_n: f64,
    ) -> (f64, Vec<SparseVec>) {
        assert!(bytes_per_entry > 0.0);
        let budget_entries = (budget_bytes / bytes_per_entry).floor().max(0.0) as usize;
        let n = self.n_for_entry_budget(budget_entries, min_n);
        (n, self.select(grads, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlion_tensor::{DetRng, Shape};

    fn grads() -> Vec<Tensor> {
        let mut rng = DetRng::seed_from_u64(1);
        vec![
            Tensor::randn(Shape::d1(500), 1.0, &mut rng),
            Tensor::randn(Shape::d1(300), 0.1, &mut rng),
            Tensor::randn(Shape::d2(10, 20), 2.0, &mut rng),
        ]
    }

    #[test]
    fn count_matches_actual_selection() {
        let g = grads();
        let p = MaxNPlanner::new(&g);
        for n in [0.85, 5.0, 10.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let counted = p.count_for_n(n);
            let selected: usize = p.select(&g, n).iter().map(|s| s.nnz()).sum();
            assert_eq!(counted, selected, "mismatch at N={n}");
        }
    }

    #[test]
    fn count_is_monotone_in_n() {
        let p = MaxNPlanner::new(&grads());
        let mut prev = 0;
        for i in 1..=100 {
            let c = p.count_for_n(i as f64);
            assert!(c >= prev, "count must grow with N");
            prev = c;
        }
        assert_eq!(prev, p.total_entries());
    }

    #[test]
    fn budget_inversion_is_tight() {
        let g = grads();
        let p = MaxNPlanner::new(&g);
        for budget in [1usize, 10, 50, 100, 400, 799, 1000] {
            let n = p.n_for_entry_budget(budget, 0.85);
            let c = p.count_for_n(n);
            assert!(
                c <= budget || n <= 0.85 + 1e-9,
                "budget {budget}: N={n} selects {c}"
            );
            // Largest admissible: a slightly larger N must overflow (unless
            // already at 100).
            if n < 100.0 - 1e-6 && c <= budget {
                let c_up = p.count_for_n((n + 0.5).min(100.0));
                assert!(c_up >= c);
            }
        }
    }

    #[test]
    fn full_budget_gives_n_100() {
        let g = grads();
        let p = MaxNPlanner::new(&g);
        assert_eq!(p.n_for_entry_budget(p.total_entries(), 0.85), 100.0);
        assert_eq!(p.n_for_entry_budget(usize::MAX, 0.85), 100.0);
    }

    #[test]
    fn starving_budget_clamps_to_min_n() {
        let g = grads();
        let p = MaxNPlanner::new(&g);
        let n = p.n_for_entry_budget(0, 0.85);
        assert_eq!(n, 0.85);
    }

    #[test]
    fn per_variable_thresholds_are_independent() {
        // Variable 1 has tiny magnitudes (std 0.1) but must still contribute
        // entries at moderate N because its threshold is relative to its own
        // max — "Max N is applied per weight variable".
        let g = grads();
        let p = MaxNPlanner::new(&g);
        let sel = p.select(&g, 50.0);
        assert!(sel[1].nnz() > 0, "small-magnitude variable starved");
    }

    #[test]
    fn select_for_budget_bytes() {
        let g = grads();
        let p = MaxNPlanner::new(&g);
        let bytes_per_entry = 704.0; // wire-scaled sparse entry
        let (n, sel) = p.select_for_budget(&g, 70_400.0, bytes_per_entry, 0.85);
        let entries: usize = sel.iter().map(|s| s.nnz()).sum();
        assert!(
            entries <= 100,
            "100-entry budget violated: {entries} at N={n}"
        );
        assert!(n < 100.0);
    }

    #[test]
    fn zero_gradient_variable_handled() {
        let g = vec![Tensor::zeros(Shape::d1(50)), grads()[0].clone()];
        let p = MaxNPlanner::new(&g);
        assert_eq!(p.count_for_n(100.0), p.total_entries());
        let c = p.count_for_n(50.0);
        let sel: usize = p.select(&g, 50.0).iter().map(|s| s.nnz()).sum();
        assert_eq!(c, sel);
    }
}
