//! The byte-level transport abstraction between DLion workers.
//!
//! The exchange logic (strategies, sync policies, DKT) is written against
//! [`Payload`] values; a transport only moves *encoded frames* between
//! peers. `dlion-net` implements this trait over real TCP sockets;
//! [`MemTransport`] implements it over in-process channels, which gives the
//! live worker driver a deterministic, socket-free harness for tests and a
//! second data point that parity holds independent of the wire.

use crate::messages::{Payload, WireCfg, WireError};
use dlion_telemetry::Histogram;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// Advisory per-link transport health (DESIGN.md §4h): send-queue depth
/// and frame-lifecycle latency histograms collected by an instrumented
/// transport. All quantities are wall-clock-derived, so they feed the
/// health plane's *advisory* view (dashboards, `frame_latency` trace
/// events) — never the deterministic `cluster_health` counters.
#[derive(Clone, Debug)]
pub struct LinkHealth {
    /// The peer this link reaches.
    pub peer: usize,
    /// Frames currently queued for the peer (send-side backpressure).
    pub queue_depth: usize,
    /// High-water mark of `queue_depth` over the link's lifetime.
    pub queue_depth_hw: usize,
    /// Frames that completed the send path on this link.
    pub frames: u64,
    /// Seconds a frame waited in the send queue (enqueue → writer pickup).
    pub queue_wait: Histogram,
    /// Seconds the writer spent serializing + pushing a frame into the
    /// socket (encode and socket write overlap for chunked streams).
    pub write_time: Histogram,
    /// Seconds the reader spent pulling + verifying a frame off the wire.
    pub read_time: Histogram,
}

impl LinkHealth {
    /// Empty instrumentation record for `peer`, with the health plane's
    /// standard exponential buckets (1 µs first bucket, ×4 growth).
    pub fn new(peer: usize) -> LinkHealth {
        LinkHealth {
            peer,
            queue_depth: 0,
            queue_depth_hw: 0,
            frames: 0,
            queue_wait: Histogram::exponential(1e-6, 4.0, 24),
            write_time: Histogram::exponential(1e-6, 4.0, 24),
            read_time: Histogram::exponential(1e-6, 4.0, 24),
        }
    }
}

/// Transport failure. Every [`ExchangeTransport`] method reports its
/// failures through this type — there are no stringly-typed errors on
/// the transport boundary. The per-peer variants
/// ([`PeerGone`](TransportError::PeerGone),
/// [`PeerDisconnected`](TransportError::PeerDisconnected),
/// [`PeerTimeout`](TransportError::PeerTimeout)) are *liveness
/// notifications* a churn-tolerant driver can recover from by demoting
/// the named peer; the rest are fatal for the worker.
#[derive(Debug)]
pub enum TransportError {
    /// Send-side: `to` is not a reachable peer (unknown id, self, or a
    /// link that already closed).
    PeerGone(usize),
    /// Receive-side: one peer's link closed (EOF or I/O error on its
    /// connection) while the rest of the mesh stays up. Reported at most
    /// once per incident; later receive calls keep serving the other
    /// peers' frames.
    PeerDisconnected { peer: usize },
    /// Receive-side: no frame from `peer` within the transport's
    /// configured per-peer receive timeout — the peer may have wedged
    /// without closing its socket. Reported at most once per silence;
    /// hearing from the peer again re-arms the timeout.
    PeerTimeout { peer: usize },
    /// Every peer connection has closed.
    Disconnected,
    /// A frame failed wire validation.
    Wire(WireError),
    /// Underlying I/O error (socket transports).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerGone(p) => write!(f, "peer {p} is gone"),
            TransportError::PeerDisconnected { peer } => {
                write!(f, "peer {peer} disconnected")
            }
            TransportError::PeerTimeout { peer } => {
                write!(f, "peer {peer} exceeded the receive timeout")
            }
            TransportError::Disconnected => write!(f, "all peers disconnected"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// Point-to-point frame transport for one worker in a fixed-size cluster.
///
/// Implementations must preserve per-peer FIFO ordering (frames from a given
/// peer arrive in send order) — the shutdown barrier and the synchronous
/// parity argument both rely on it. Frames are the codec's checksummed
/// byte strings; [`Payload::to_frame`] / [`Payload::from_frame`] convert.
///
/// # Error contract
///
/// Every method returns [`TransportError`]; implementations must not
/// panic on peer failure.
///
/// * [`send_frame`](ExchangeTransport::send_frame) fails with
///   [`TransportError::PeerGone`] when `to` cannot accept frames
///   (unknown id, `to == me`, or the link closed). Sending never fails
///   because of a *receive*-side condition.
/// * The receive methods return `Ok(None)` for "no frame available",
///   and `Ok(Some(..))` frames stay strictly FIFO per peer. A per-peer
///   liveness loss surfaces **once** as
///   [`TransportError::PeerDisconnected`] (link closed) or
///   [`TransportError::PeerTimeout`] (silent past the configured
///   timeout); these are notifications, not terminal states — callers
///   that keep receiving continue to get the surviving peers' frames.
/// * [`TransportError::Disconnected`] means the whole mesh is gone and
///   no further frame can ever arrive.
/// * [`TransportError::Wire`] / [`TransportError::Io`] indicate frame
///   corruption or OS-level failure and are fatal.
pub trait ExchangeTransport: Send {
    /// This worker's id in `0..n()`.
    fn me(&self) -> usize;

    /// Cluster size.
    fn n(&self) -> usize;

    /// Queue a frame for delivery to `to`. May block briefly under
    /// backpressure; returns an error only when the peer is unreachable.
    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), TransportError>;

    /// Non-blocking poll: the next `(from, frame)` if one is ready.
    fn try_recv_frame(&mut self) -> Result<Option<(usize, Vec<u8>)>, TransportError>;

    /// Block up to `timeout` for the next frame; `Ok(None)` on timeout.
    fn recv_frame_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(usize, Vec<u8>)>, TransportError>;

    /// Encode `payload` under `cfg` and deliver it to `to`, returning the
    /// exact number of bytes put on the wire (`payload.wire_len(cfg)`).
    ///
    /// The default implementation materializes the wire stream and hands
    /// it to [`send_frame`](ExchangeTransport::send_frame) — correct for
    /// in-memory transports, where "the wire" is a channel. Socket
    /// transports override this to *stream*: the TCP transport hands the
    /// `Arc<Payload>` to its per-peer writer thread, which serializes
    /// chunk *k+1* while chunk *k* is in the socket buffer, so a 5 MB
    /// gradient never exists as one materialized `Vec<u8>` on the send
    /// path. Receivers decode both layouts with [`Payload::from_wire`] /
    /// `decode_wire`.
    fn send_wire(
        &mut self,
        to: usize,
        payload: Arc<Payload>,
        cfg: &WireCfg,
    ) -> Result<usize, TransportError> {
        let stream = payload.to_wire(cfg);
        let len = stream.len();
        self.send_frame(to, stream)?;
        Ok(len)
    }

    /// Snapshot this endpoint's per-link health instrumentation (one
    /// entry per connected peer). The default returns nothing — only
    /// instrumented transports (TCP with health reporting on) override
    /// it; `MemTransport`'s channels have no meaningful queue or wire
    /// latency to report.
    fn link_health(&mut self) -> Vec<LinkHealth> {
        Vec::new()
    }
}

/// Encode and send a payload; returns the frame's encoded size in bytes
/// (the live backend's byte accounting is exact, not scaled).
pub fn send_payload(
    t: &mut dyn ExchangeTransport,
    to: usize,
    payload: &Payload,
) -> Result<usize, TransportError> {
    let frame = payload.to_frame();
    let len = frame.len();
    t.send_frame(to, frame)?;
    Ok(len)
}

/// In-process transport: a full mesh of unbounded channels. Used by tests
/// and `dlion-live --transport mem`; the TCP transport in `dlion-net` is the
/// real-socket counterpart.
/// A frame tagged with its sender's worker id.
type TaggedFrame = (usize, Vec<u8>);

pub struct MemTransport {
    me: usize,
    txs: Vec<Option<Sender<TaggedFrame>>>,
    rx: Receiver<TaggedFrame>,
}

/// Build a connected `n`-worker in-memory mesh; element `i` is worker `i`'s
/// transport endpoint (move each into its worker thread).
pub fn mem_mesh(n: usize) -> Vec<MemTransport> {
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(me, rx)| MemTransport {
            me,
            txs: txs
                .iter()
                .enumerate()
                .map(|(j, tx)| (j != me).then(|| tx.clone()))
                .collect(),
            rx,
        })
        .collect()
}

impl ExchangeTransport for MemTransport {
    fn me(&self) -> usize {
        self.me
    }

    fn n(&self) -> usize {
        self.txs.len()
    }

    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), TransportError> {
        let tx = self
            .txs
            .get(to)
            .and_then(|t| t.as_ref())
            .ok_or(TransportError::PeerGone(to))?;
        tx.send((self.me, frame))
            .map_err(|_| TransportError::PeerGone(to))
    }

    fn try_recv_frame(&mut self) -> Result<Option<(usize, Vec<u8>)>, TransportError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv_frame_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(usize, Vec<u8>)>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Payload;

    #[test]
    fn mem_mesh_routes_frames_with_sender_ids() {
        let mut mesh = mem_mesh(3);
        let frame = Payload::DktRequest.to_frame();
        let mut w2 = mesh.pop().unwrap();
        let mut w1 = mesh.pop().unwrap();
        let mut w0 = mesh.pop().unwrap();
        assert_eq!(w0.me(), 0);
        assert_eq!(w0.n(), 3);
        w0.send_frame(2, frame.clone()).unwrap();
        w1.send_frame(2, frame.clone()).unwrap();
        let (from_a, f_a) = w2.try_recv_frame().unwrap().unwrap();
        let (from_b, _) = w2.try_recv_frame().unwrap().unwrap();
        assert_eq!((from_a, from_b), (0, 1));
        assert_eq!(f_a, frame);
        assert!(w2.try_recv_frame().unwrap().is_none());
        assert!(w1
            .recv_frame_timeout(Duration::from_millis(1))
            .unwrap()
            .is_none());
    }

    #[test]
    fn mem_transport_cannot_send_to_self() {
        let mut mesh = mem_mesh(2);
        let mut w0 = mesh.remove(0);
        assert!(matches!(
            w0.send_frame(0, vec![1, 2, 3]),
            Err(TransportError::PeerGone(0))
        ));
    }

    #[test]
    fn dropped_peer_surfaces_as_gone() {
        let mut mesh = mem_mesh(2);
        let w1 = mesh.pop().unwrap();
        let mut w0 = mesh.pop().unwrap();
        drop(w1);
        assert!(matches!(
            w0.send_frame(1, vec![0]),
            Err(TransportError::PeerGone(1))
        ));
    }

    #[test]
    fn send_wire_delivers_chunked_streams_and_reports_wire_len() {
        use crate::messages::{GradData, GradMsg, WireFormat};
        use dlion_tensor::{Shape, Tensor};
        let mut mesh = mem_mesh(2);
        let mut w1 = mesh.pop().unwrap();
        let mut w0 = mesh.pop().unwrap();
        let p = Arc::new(Payload::Grad(GradMsg {
            iteration: 1,
            lbs: 32,
            data: GradData::Dense(vec![Tensor::from_vec(
                Shape::d1(400),
                (0..400).map(|i| i as f32 * 0.5).collect(),
            )]),
            n_used: 100.0,
        }));
        let cfg = WireCfg {
            format: WireFormat::Fp16,
            chunk_bytes: 128,
        };
        assert!(p.wire_is_chunked(&cfg));
        let sent = w0.send_wire(1, p.clone(), &cfg).unwrap();
        assert_eq!(sent, p.wire_len(&cfg));
        let (from, stream) = w1.try_recv_frame().unwrap().unwrap();
        assert_eq!(from, 0);
        assert_eq!(stream.len(), sent);
        let mut scratch = Vec::new();
        let back = Payload::from_wire(&stream, &mut scratch).unwrap();
        assert_eq!(back.kind(), "grad");
    }

    #[test]
    fn payload_send_helper_reports_exact_bytes() {
        let mut mesh = mem_mesh(2);
        let mut w1 = mesh.pop().unwrap();
        let mut w0 = mesh.pop().unwrap();
        let p = Payload::LossShare { avg_loss: 1.5 };
        let sent = send_payload(&mut w0, 1, &p).unwrap();
        assert_eq!(sent, p.encoded_len());
        let (from, frame) = w1.try_recv_frame().unwrap().unwrap();
        assert_eq!(from, 0);
        assert_eq!(Payload::from_frame(&frame).unwrap(), p);
    }
}
