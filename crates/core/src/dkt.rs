//! Direct knowledge transfer (§3.4).
//!
//! Every `period` iterations each worker shares the average of its last `l`
//! losses. Knowing everyone's loss, a worker sends a DKT request to the
//! current *best* worker (smallest loss); the best worker replies with its
//! full model weights, which the requester merges as
//! `w ← w − λ (w − w_best)` (after Teng et al.'s leader SGD).
//!
//! The exploration of Figure 9 is captured by the knobs: `period`
//! (when-to-send), [`DktMode`] (whom-to-send) and `lambda` (how-to-merge).

use std::collections::VecDeque;

/// Whom the best weights are transferred to (Fig. 9b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DktMode {
    /// No direct knowledge transfer.
    Off,
    /// Every worker pulls from the best (the paper's default, best result).
    Best2All,
    /// Only the worst worker pulls from the best.
    Best2Worst,
}

/// DKT configuration (paper defaults: period 100 iterations, λ = 0.75).
#[derive(Clone, Copy, Debug)]
pub struct DktConfig {
    pub mode: DktMode,
    /// Share losses / trigger a pull every this many local iterations.
    pub period_iters: u64,
    /// Merge ratio λ ∈ [0, 1].
    pub lambda: f32,
    /// Number of recent losses averaged into the shared figure (`l`).
    pub loss_window: usize,
}

impl Default for DktConfig {
    fn default() -> Self {
        DktConfig {
            mode: DktMode::Best2All,
            period_iters: 100,
            lambda: 0.75,
            loss_window: 10,
        }
    }
}

impl DktConfig {
    pub fn off() -> Self {
        DktConfig {
            mode: DktMode::Off,
            ..Default::default()
        }
    }

    pub fn validate(&self) {
        assert!(self.period_iters > 0, "DKT period must be positive");
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda must be in [0,1]"
        );
        assert!(self.loss_window > 0);
    }
}

/// Per-worker DKT state: own loss history plus the latest loss heard from
/// each peer.
#[derive(Clone, Debug)]
pub struct DktState {
    cfg: DktConfig,
    worker: usize,
    n: usize,
    recent: VecDeque<f64>,
    /// Latest shared average loss per worker (including self once computed).
    known: Vec<Option<f64>>,
}

impl DktState {
    pub fn new(worker: usize, n: usize, cfg: DktConfig) -> Self {
        cfg.validate();
        assert!(worker < n);
        DktState {
            cfg,
            worker,
            n,
            recent: VecDeque::new(),
            known: vec![None; n],
        }
    }

    pub fn cfg(&self) -> &DktConfig {
        &self.cfg
    }

    /// Cluster size this state was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Record one training loss.
    pub fn record_loss(&mut self, loss: f64) {
        self.recent.push_back(loss);
        while self.recent.len() > self.cfg.loss_window {
            self.recent.pop_front();
        }
    }

    /// Average of the last `l` losses, if any were recorded.
    pub fn avg_loss(&self) -> Option<f64> {
        if self.recent.is_empty() {
            None
        } else {
            Some(self.recent.iter().sum::<f64>() / self.recent.len() as f64)
        }
    }

    /// Is this local iteration a DKT round boundary?
    pub fn is_share_round(&self, iteration: u64) -> bool {
        self.cfg.mode != DktMode::Off
            && iteration > 0
            && iteration.is_multiple_of(self.cfg.period_iters)
    }

    /// Note a loss shared by `who` (also used for our own share).
    pub fn update_known(&mut self, who: usize, loss: f64) {
        self.known[who] = Some(loss);
    }

    /// Drop everything known about `who` (the live backend forgets a
    /// departed worker so it can never be chosen as a pull target).
    pub fn forget(&mut self, who: usize) {
        self.known[who] = None;
    }

    /// The worker currently believed best (smallest loss), if any losses are
    /// known. Ties break toward the lower id for determinism.
    pub fn best_worker(&self) -> Option<usize> {
        self.known
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|v| (i, v)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
    }

    /// The worker currently believed worst (largest loss).
    pub fn worst_worker(&self) -> Option<usize> {
        self.known
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|v| (i, v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// Should this worker send a DKT pull request right now? Returns the
    /// target (best) worker if so.
    ///
    /// * `Best2All`: request whenever someone else is best.
    /// * `Best2Worst`: request only if *we* are the worst.
    pub fn pull_target(&self) -> Option<usize> {
        let best = self.best_worker()?;
        if best == self.worker {
            return None;
        }
        match self.cfg.mode {
            DktMode::Off => None,
            DktMode::Best2All => Some(best),
            DktMode::Best2Worst => {
                if self.worst_worker()? == self.worker {
                    Some(best)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(mode: DktMode) -> DktState {
        DktState::new(
            1,
            4,
            DktConfig {
                mode,
                ..Default::default()
            },
        )
    }

    #[test]
    fn loss_window_averages_last_l() {
        let mut s = DktState::new(
            0,
            2,
            DktConfig {
                loss_window: 3,
                ..Default::default()
            },
        );
        assert_eq!(s.avg_loss(), None);
        for l in [10.0, 1.0, 2.0, 3.0] {
            s.record_loss(l);
        }
        // Window of 3: (1+2+3)/3.
        assert_eq!(s.avg_loss(), Some(2.0));
    }

    #[test]
    fn share_round_every_period() {
        let s = state(DktMode::Best2All);
        assert!(!s.is_share_round(0));
        assert!(s.is_share_round(100));
        assert!(!s.is_share_round(150));
        assert!(s.is_share_round(200));
        let off = state(DktMode::Off);
        assert!(!off.is_share_round(100));
    }

    #[test]
    fn best_and_worst_selection() {
        let mut s = state(DktMode::Best2All);
        s.update_known(0, 0.5);
        s.update_known(1, 0.9);
        s.update_known(2, 0.3);
        assert_eq!(s.best_worker(), Some(2));
        assert_eq!(s.worst_worker(), Some(1));
    }

    #[test]
    fn best_ties_break_low_id() {
        let mut s = state(DktMode::Best2All);
        s.update_known(3, 0.5);
        s.update_known(0, 0.5);
        assert_eq!(s.best_worker(), Some(0));
    }

    #[test]
    fn pull_target_best2all() {
        let mut s = state(DktMode::Best2All);
        s.update_known(0, 0.2);
        s.update_known(1, 0.8); // self
        assert_eq!(s.pull_target(), Some(0));
        // If self is best, no pull.
        s.update_known(1, 0.1);
        assert_eq!(s.pull_target(), None);
    }

    #[test]
    fn pull_target_best2worst_only_when_worst() {
        let mut s = state(DktMode::Best2Worst);
        s.update_known(0, 0.2);
        s.update_known(1, 0.8); // self, currently worst
        s.update_known(2, 0.5);
        assert_eq!(s.pull_target(), Some(0));
        // Someone else becomes worst -> we stop pulling.
        s.update_known(2, 0.9);
        assert_eq!(s.pull_target(), None);
    }

    #[test]
    fn pull_target_off_mode() {
        let mut s = state(DktMode::Off);
        s.update_known(0, 0.1);
        s.update_known(1, 0.9);
        assert_eq!(s.pull_target(), None);
    }

    #[test]
    fn no_losses_no_target() {
        let s = state(DktMode::Best2All);
        assert_eq!(s.pull_target(), None);
        assert_eq!(s.best_worker(), None);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_panics() {
        DktConfig {
            lambda: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
