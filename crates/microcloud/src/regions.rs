//! Table 2 of the paper: measured bandwidth between six Amazon regions,
//! in Mbps. Row = source region, column = destination region.

use crate::WAN_LATENCY;
use dlion_simnet::NetworkModel;

/// Region short names, in table order.
pub const REGIONS: [&str; 6] = ["Virginia", "Oregon", "Ireland", "Mumbai", "Seoul", "Sydney"];

/// The bandwidth matrix (Mbps). Diagonal entries are 0 (unused).
pub const REGION_MBPS: [[f64; 6]; 6] = [
    //          V      O      I      M      S1     S2
    /* V  */
    [0.0, 190.0, 181.0, 53.0, 58.0, 56.0],
    /* O  */ [187.0, 0.0, 91.0, 41.0, 93.0, 84.0],
    /* I  */ [171.0, 92.0, 0.0, 73.0, 30.0, 41.0],
    /* M  */ [53.0, 41.0, 73.0, 0.0, 85.0, 79.0],
    /* S1 */ [58.0, 88.0, 40.0, 85.0, 0.0, 79.0],
    /* S2 */ [56.0, 84.0, 36.0, 79.0, 72.0, 0.0],
];

/// Name of region `i`.
pub fn region_name(i: usize) -> &'static str {
    REGIONS[i]
}

/// A 6-worker [`NetworkModel`] where worker `i` lives in region `i` and
/// link `i→j` carries the Table 2 bandwidth.
pub fn amazon_wan_network() -> NetworkModel {
    let mut flat = Vec::with_capacity(36);
    for row in REGION_MBPS.iter() {
        for &v in row.iter() {
            // Diagonal entries never used; keep a positive placeholder so
            // the model's invariants hold.
            flat.push(if v == 0.0 { 1.0 } else { v });
        }
    }
    NetworkModel::from_matrix(6, &flat, WAN_LATENCY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_spot_checks() {
        // Virginia -> Oregon 190, Oregon -> Virginia 187 (asymmetric!).
        assert_eq!(REGION_MBPS[0][1], 190.0);
        assert_eq!(REGION_MBPS[1][0], 187.0);
        // Ireland -> Seoul 30 (the scarcest link).
        assert_eq!(REGION_MBPS[2][4], 30.0);
        // Mumbai -> Virginia 53.
        assert_eq!(REGION_MBPS[3][0], 53.0);
        // Sydney -> Ireland 36.
        assert_eq!(REGION_MBPS[5][2], 36.0);
    }

    #[test]
    fn diagonal_is_zero_and_rest_positive() {
        for (i, row) in REGION_MBPS.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i == j {
                    assert_eq!(v, 0.0);
                } else {
                    assert!(v > 0.0, "{i}->{j}");
                }
            }
        }
    }

    #[test]
    fn wan_is_much_scarcer_than_lan() {
        let max = REGION_MBPS.iter().flatten().fold(0.0f64, |m, &v| m.max(v));
        assert!(
            max < crate::LAN_MBPS / 5.0,
            "WAN max {max} vs LAN {}",
            crate::LAN_MBPS
        );
    }

    #[test]
    fn network_model_reads_matrix() {
        let net = amazon_wan_network();
        assert_eq!(net.bandwidth_mbps(0, 1, 0.0), 190.0);
        assert_eq!(net.bandwidth_mbps(4, 2, 0.0), 40.0);
    }

    #[test]
    fn region_names() {
        assert_eq!(region_name(0), "Virginia");
        assert_eq!(region_name(5), "Sydney");
    }
}
