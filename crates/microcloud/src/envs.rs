//! Table 3 of the paper: the emulated micro-cloud environments.
//!
//! Each environment fixes, for six workers, (a) a compute-capacity schedule
//! (cores, or AWS GPU instance types) and (b) a per-worker network bandwidth
//! schedule. A directed link `i→j` carries `min(bw_i, bw_j)` — the worker
//! with the scarcer uplink bounds the pair, which is how per-worker `tc`
//! shaping behaves.
//!
//! `Hetero NET B` (used by Figure 17 but absent from Table 3) is defined as
//! the network-reversed variant of Hetero NET A, mirroring how Hetero SYS B
//! reverses Hetero SYS A.

use crate::{
    CPU_BATCH_EXPONENT, CPU_COST_PER_SAMPLE, CPU_OVERHEAD, DYNAMIC_PHASE_SECS, GPU_BATCH_EXPONENT,
    GPU_COST_PER_SAMPLE, GPU_OVERHEAD, GPU_P28X_UNITS, GPU_P2X_UNITS, LAN_LATENCY, LAN_MBPS,
    N_WORKERS, WAN_LATENCY,
};
use dlion_simnet::{ComputeModel, NetworkModel, PiecewiseConst};

/// Which emulated cluster an environment belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterKind {
    /// The 6-machine local CPU cluster (Cipher / CIFAR10 stand-in).
    Cpu,
    /// The 6-instance Amazon GPU cluster (MobileNet / ImageNet stand-in).
    Gpu,
}

/// Identifiers for every Table 3 environment (plus Hetero NET B, see module
/// docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EnvId {
    HomoA,
    HomoB,
    HomoC,
    HeteroCpuA,
    HeteroCpuB,
    HeteroNetA,
    HeteroNetB,
    HeteroSysA,
    HeteroSysB,
    HeteroSysC,
    DynamicSysA,
    DynamicSysB,
}

impl EnvId {
    /// All environments, in Table 3 order (with Hetero NET B appended after
    /// Hetero NET A).
    pub fn all() -> Vec<EnvId> {
        use EnvId::*;
        vec![
            HomoA,
            HomoB,
            HomoC,
            HeteroCpuA,
            HeteroCpuB,
            HeteroNetA,
            HeteroNetB,
            HeteroSysA,
            HeteroSysB,
            HeteroSysC,
            DynamicSysA,
            DynamicSysB,
        ]
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            EnvId::HomoA => "Homo A",
            EnvId::HomoB => "Homo B",
            EnvId::HomoC => "Homo C",
            EnvId::HeteroCpuA => "Hetero CPU A",
            EnvId::HeteroCpuB => "Hetero CPU B",
            EnvId::HeteroNetA => "Hetero NET A",
            EnvId::HeteroNetB => "Hetero NET B",
            EnvId::HeteroSysA => "Hetero SYS A",
            EnvId::HeteroSysB => "Hetero SYS B",
            EnvId::HeteroSysC => "Hetero SYS C",
            EnvId::DynamicSysA => "Dynamic SYS A",
            EnvId::DynamicSysB => "Dynamic SYS B",
        }
    }

    /// Parse a kebab- or snake-case name like `hetero-sys-b` (case
    /// insensitive) into an environment id.
    pub fn parse(name: &str) -> Option<EnvId> {
        Some(match name.to_ascii_lowercase().replace('_', "-").as_str() {
            "homo-a" => EnvId::HomoA,
            "homo-b" => EnvId::HomoB,
            "homo-c" => EnvId::HomoC,
            "hetero-cpu-a" => EnvId::HeteroCpuA,
            "hetero-cpu-b" => EnvId::HeteroCpuB,
            "hetero-net-a" => EnvId::HeteroNetA,
            "hetero-net-b" => EnvId::HeteroNetB,
            "hetero-sys-a" => EnvId::HeteroSysA,
            "hetero-sys-b" => EnvId::HeteroSysB,
            "hetero-sys-c" => EnvId::HeteroSysC,
            "dynamic-sys-a" => EnvId::DynamicSysA,
            "dynamic-sys-b" => EnvId::DynamicSysB,
            _ => return None,
        })
    }

    /// Materialize the environment spec.
    pub fn spec(self) -> EnvSpec {
        let cpu_full = vec![24.0; N_WORKERS];
        let hetero_cpu_a = vec![24.0, 24.0, 12.0, 12.0, 6.0, 6.0];
        let hetero_cpu_b = vec![24.0, 24.0, 24.0, 24.0, 24.0, 4.0];
        let lan = vec![LAN_MBPS; N_WORKERS];
        let net_50 = vec![50.0; N_WORKERS];
        let net_a = vec![50.0, 50.0, 35.0, 35.0, 20.0, 20.0];
        let net_b = vec![20.0, 20.0, 35.0, 35.0, 50.0, 50.0];
        let gpu_homo = vec![GPU_P2X_UNITS; N_WORKERS];
        let gpu_hetero = vec![
            GPU_P28X_UNITS,
            GPU_P28X_UNITS,
            GPU_P2X_UNITS,
            GPU_P2X_UNITS,
            GPU_P2X_UNITS,
            GPU_P2X_UNITS,
        ];
        let net_c = vec![190.0, 190.0, 140.0, 140.0, 100.0, 100.0];

        let constant = |vals: &[f64]| {
            vals.iter()
                .map(|&v| PiecewiseConst::constant(v))
                .collect::<Vec<_>>()
        };
        // Per-worker phase schedules for the dynamic environments: one value
        // per sub-environment, each lasting DYNAMIC_PHASE_SECS.
        let phased = |per_phase: &[&[f64]]| -> Vec<PiecewiseConst> {
            (0..N_WORKERS)
                .map(|w| {
                    let vals: Vec<f64> = per_phase.iter().map(|p| p[w]).collect();
                    PiecewiseConst::phases(&vals, DYNAMIC_PHASE_SECS)
                })
                .collect()
        };

        dlion_telemetry::debug!(target: "microcloud.envs", "materializing env spec {self:?}");
        match self {
            EnvId::HomoA => EnvSpec::cpu("Homo A", constant(&cpu_full), constant(&lan), true),
            EnvId::HomoB => EnvSpec::cpu("Homo B", constant(&cpu_full), constant(&net_50), false),
            EnvId::HomoC => EnvSpec::gpu("Homo C", constant(&gpu_homo), constant(&lan), true),
            EnvId::HeteroCpuA => EnvSpec::cpu(
                "Hetero CPU A",
                constant(&hetero_cpu_a),
                constant(&lan),
                true,
            ),
            EnvId::HeteroCpuB => EnvSpec::cpu(
                "Hetero CPU B",
                constant(&hetero_cpu_b),
                constant(&lan),
                true,
            ),
            EnvId::HeteroNetA => {
                EnvSpec::cpu("Hetero NET A", constant(&cpu_full), constant(&net_a), false)
            }
            EnvId::HeteroNetB => {
                EnvSpec::cpu("Hetero NET B", constant(&cpu_full), constant(&net_b), false)
            }
            EnvId::HeteroSysA => EnvSpec::cpu(
                "Hetero SYS A",
                constant(&hetero_cpu_a),
                constant(&net_a),
                false,
            ),
            EnvId::HeteroSysB => EnvSpec::cpu(
                "Hetero SYS B",
                constant(&hetero_cpu_a),
                constant(&net_b),
                false,
            ),
            EnvId::HeteroSysC => EnvSpec::gpu(
                "Hetero SYS C",
                constant(&gpu_hetero),
                constant(&net_c),
                false,
            ),
            EnvId::DynamicSysA => EnvSpec::cpu(
                "Dynamic SYS A",
                phased(&[&cpu_full, &hetero_cpu_a, &hetero_cpu_a]),
                phased(&[&net_50, &net_a, &net_b]),
                false,
            ),
            EnvId::DynamicSysB => EnvSpec::cpu(
                "Dynamic SYS B",
                phased(&[&hetero_cpu_a, &hetero_cpu_a, &cpu_full]),
                phased(&[&net_b, &net_a, &net_50]),
                false,
            ),
        }
    }
}

/// A fully-specified 6-worker environment.
pub struct EnvSpec {
    pub name: &'static str,
    pub cluster: ClusterKind,
    /// Per-worker capacity schedules (cores / GPU units).
    pub capacity: Vec<PiecewiseConst>,
    /// Per-worker network bandwidth schedules (Mbps).
    pub worker_bw: Vec<PiecewiseConst>,
    /// True if workers talk over a LAN (affects latency).
    pub lan: bool,
}

impl EnvSpec {
    fn cpu(
        name: &'static str,
        capacity: Vec<PiecewiseConst>,
        worker_bw: Vec<PiecewiseConst>,
        lan: bool,
    ) -> Self {
        EnvSpec {
            name,
            cluster: ClusterKind::Cpu,
            capacity,
            worker_bw,
            lan,
        }
    }

    fn gpu(
        name: &'static str,
        capacity: Vec<PiecewiseConst>,
        worker_bw: Vec<PiecewiseConst>,
        lan: bool,
    ) -> Self {
        EnvSpec {
            name,
            cluster: ClusterKind::Gpu,
            capacity,
            worker_bw,
            lan,
        }
    }

    pub fn n_workers(&self) -> usize {
        self.capacity.len()
    }

    /// Build the compute model (workload cost law depends on the cluster).
    pub fn compute_model(&self) -> ComputeModel {
        let (cost, overhead, beta) = match self.cluster {
            ClusterKind::Cpu => (CPU_COST_PER_SAMPLE, CPU_OVERHEAD, CPU_BATCH_EXPONENT),
            ClusterKind::Gpu => (GPU_COST_PER_SAMPLE, GPU_OVERHEAD, GPU_BATCH_EXPONENT),
        };
        ComputeModel::new(self.capacity.clone(), cost, overhead).with_batch_exponent(beta)
    }

    /// Build the network model: link `i→j` = min(bw_i, bw_j).
    pub fn network_model(&self) -> NetworkModel {
        let n = self.n_workers();
        let latency = if self.lan { LAN_LATENCY } else { WAN_LATENCY };
        let mut net = NetworkModel::uniform(n, LAN_MBPS, latency);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    net.set_link(i, j, self.worker_bw[i].min_with(&self.worker_bw[j]));
                }
            }
        }
        net
    }

    /// Total capacity units at time `t` (the paper compares 144 vs 88 vs 114
    /// cores across Homo A / Hetero CPU A / Hetero CPU B).
    pub fn total_capacity(&self, t: f64) -> f64 {
        self.capacity.iter().map(|c| c.value_at(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_core_counts() {
        // Totals follow Table 3's rows: 144 / 84 / 124. (The paper's §5.2.3
        // text says 88 and 114, which don't match its own Table 3 rows
        // 24/24/12/12/6/6 = 84 and 24/24/24/24/24/4 = 124; the table wins.)
        assert_eq!(EnvId::HomoA.spec().total_capacity(0.0), 144.0);
        assert_eq!(EnvId::HeteroCpuA.spec().total_capacity(0.0), 84.0);
        assert_eq!(EnvId::HeteroCpuB.spec().total_capacity(0.0), 124.0);
    }

    #[test]
    fn link_bandwidth_is_pairwise_min() {
        let net = EnvId::HeteroNetA.spec().network_model();
        // worker 0 (50) -> worker 4 (20): min = 20.
        assert_eq!(net.bandwidth_mbps(0, 4, 0.0), 20.0);
        assert_eq!(net.bandwidth_mbps(4, 0, 0.0), 20.0);
        assert_eq!(net.bandwidth_mbps(0, 1, 0.0), 50.0);
        assert_eq!(net.bandwidth_mbps(2, 3, 0.0), 35.0);
    }

    #[test]
    fn homo_a_is_lan() {
        let spec = EnvId::HomoA.spec();
        assert!(spec.lan);
        let net = spec.network_model();
        assert_eq!(net.bandwidth_mbps(0, 5, 0.0), LAN_MBPS);
    }

    #[test]
    fn sys_b_reverses_sys_a_network_but_not_compute() {
        let a = EnvId::HeteroSysA.spec();
        let b = EnvId::HeteroSysB.spec();
        for w in 0..6 {
            assert_eq!(a.capacity[w].value_at(0.0), b.capacity[w].value_at(0.0));
            assert_eq!(
                a.worker_bw[w].value_at(0.0),
                b.worker_bw[5 - w].value_at(0.0)
            );
        }
        // In SYS A powerful workers have more bandwidth; in SYS B less.
        assert_eq!(a.worker_bw[0].value_at(0.0), 50.0);
        assert_eq!(b.worker_bw[0].value_at(0.0), 20.0);
    }

    #[test]
    fn gpu_envs_use_gpu_cost_law() {
        let spec = EnvId::HomoC.spec();
        assert_eq!(spec.cluster, ClusterKind::Gpu);
        let cm = spec.compute_model();
        assert!((cm.iter_time(0, 32, 0.0) - 0.5).abs() < 0.01);
        let hc = EnvId::HeteroSysC.spec();
        // p2.8xlarge workers are 8x the capacity of p2.xlarge.
        assert_eq!(
            hc.capacity[0].value_at(0.0),
            8.0 * hc.capacity[5].value_at(0.0)
        );
    }

    #[test]
    fn dynamic_sys_a_phases() {
        let spec = EnvId::DynamicSysA.spec();
        // Phase 1 (0-500 s): Homo B — 24 cores, 50 Mbps everywhere.
        assert_eq!(spec.capacity[4].value_at(100.0), 24.0);
        assert_eq!(spec.worker_bw[4].value_at(100.0), 50.0);
        // Phase 2 (500-1000 s): Hetero SYS A.
        assert_eq!(spec.capacity[4].value_at(600.0), 6.0);
        assert_eq!(spec.worker_bw[4].value_at(600.0), 20.0);
        // Phase 3 (1000+ s): Hetero SYS B — same cores, reversed network.
        assert_eq!(spec.capacity[4].value_at(1100.0), 6.0);
        assert_eq!(spec.worker_bw[4].value_at(1100.0), 50.0);
    }

    #[test]
    fn dynamic_sys_b_is_reverse_order() {
        let a = EnvId::DynamicSysA.spec();
        let b = EnvId::DynamicSysB.spec();
        for w in 0..6 {
            // Phase 1 of B == phase 3 of A, and vice versa.
            assert_eq!(
                b.worker_bw[w].value_at(100.0),
                a.worker_bw[w].value_at(1100.0)
            );
            assert_eq!(
                b.worker_bw[w].value_at(1100.0),
                a.worker_bw[w].value_at(100.0)
            );
        }
    }

    #[test]
    fn all_envs_materialize() {
        for id in EnvId::all() {
            let spec = id.spec();
            assert_eq!(spec.n_workers(), N_WORKERS, "{}", spec.name);
            let _ = spec.compute_model();
            let _ = spec.network_model();
            assert!(!spec.name.is_empty());
        }
    }

    #[test]
    fn parse_roundtrips_all_ids() {
        for id in EnvId::all() {
            let kebab = id.name().to_ascii_lowercase().replace(' ', "-");
            assert_eq!(EnvId::parse(&kebab), Some(id), "{kebab}");
        }
        assert_eq!(EnvId::parse("HETERO_SYS_C"), Some(EnvId::HeteroSysC));
        assert_eq!(EnvId::parse("mars-one"), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(EnvId::HeteroSysC.name(), "Hetero SYS C");
        assert_eq!(EnvId::DynamicSysB.name(), "Dynamic SYS B");
    }
}
