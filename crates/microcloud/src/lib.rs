//! # dlion-microcloud
//!
//! The emulated micro-cloud environments of the DLion paper's evaluation:
//!
//! * [`regions`] — Table 2, the measured bandwidth matrix between six Amazon
//!   regions (Virginia, Oregon, Ireland, Mumbai, Seoul, Sydney),
//! * [`envs`] — Table 3, the eleven environment presets combining
//!   homogeneous/heterogeneous compute and network capacity, including the
//!   two dynamic environments whose resources change every 500 seconds,
//! * calibration constants mapping "CPU cores" / "AWS instance types" and
//!   "Mbps" into the simulator's compute/network models, chosen so the
//!   compute-vs-communication ratios match the paper's testbed (see
//!   DESIGN.md §1 and EXPERIMENTS.md "Calibration").

pub mod envs;
pub mod regions;

pub use envs::{ClusterKind, EnvId, EnvSpec};
pub use regions::{amazon_wan_network, region_name, REGIONS, REGION_MBPS};

/// LAN link bandwidth (Mbps) — the local cluster's 1 Gbps NICs.
pub const LAN_MBPS: f64 = 1000.0;
/// LAN one-way latency (seconds).
pub const LAN_LATENCY: f64 = 1e-4;
/// WAN one-way latency (seconds) — typical inter-region RTT/2.
pub const WAN_LATENCY: f64 = 0.05;

/// Core-seconds of compute per Cipher training sample. Calibrated so a
/// 24-core worker runs one LBS=32 iteration in ~2.5 s — the regime where a
/// dense 5 MB gradient exchange to 5 peers is cheap on a 1 Gbps LAN
/// (~0.2 s) but crushing on a 50 Mbps WAN (~4 s), matching the paper.
pub const CPU_COST_PER_SAMPLE: f64 = 1.8;
/// Fixed per-iteration overhead on the CPU cluster (seconds).
pub const CPU_OVERHEAD: f64 = 0.1;

/// Capacity units of one p2.xlarge (1 GPU). Calibrated so an LBS=32
/// MobileNet iteration takes ~0.5 s — fast enough that the 17 MB model
/// makes even the 1 Gbps LAN the bottleneck (§5.2.2).
pub const GPU_P2X_UNITS: f64 = 48.0;
/// Capacity units of one p2.8xlarge (8 GPUs).
pub const GPU_P28X_UNITS: f64 = 8.0 * GPU_P2X_UNITS;
/// Core-seconds per MobileNet sample on the GPU cluster's unit scale.
pub const GPU_COST_PER_SAMPLE: f64 = 0.675;
/// Fixed per-iteration overhead on the GPU cluster (seconds).
pub const GPU_OVERHEAD: f64 = 0.05;

/// Batch-scaling exponent of the CPU cluster: doubling the batch costs
/// ~1.68× the time (multi-core SGD underutilizes cores at small batches).
pub const CPU_BATCH_EXPONENT: f64 = 0.75;
/// Batch-scaling exponent of the GPU cluster: GPUs gain even more from
/// larger batches (occupancy), so scaling is flatter.
pub const GPU_BATCH_EXPONENT: f64 = 0.65;

/// Number of workers in every paper environment.
pub const N_WORKERS: usize = 6;

/// Length of each sub-environment phase in Dynamic SYS A/B (seconds).
pub const DYNAMIC_PHASE_SECS: f64 = 500.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_ratios_cpu() {
        // 24-core worker, LBS 32: ~2.5 s per iteration.
        let iter = CPU_OVERHEAD + 32.0 * CPU_COST_PER_SAMPLE / 24.0;
        assert!((iter - 2.5).abs() < 0.01, "CPU iteration time {iter}");
        // Dense 5 MB to 5 peers on LAN ~0.2 s (compute-bound)...
        let lan = 5.0 * dlion_simnet::transfer_seconds(5e6, LAN_MBPS);
        assert!(
            lan < 0.5 * iter,
            "LAN comm {lan} should be < half compute {iter}"
        );
        // ...but ~4 s on a 50 Mbps WAN (communication-bound).
        let wan = 5.0 * dlion_simnet::transfer_seconds(5e6, 50.0);
        assert!(
            wan > 1.5 * iter,
            "WAN comm {wan} should dominate compute {iter}"
        );
    }

    #[test]
    fn calibration_ratios_gpu() {
        let iter = GPU_OVERHEAD + 32.0 * GPU_COST_PER_SAMPLE / GPU_P2X_UNITS;
        assert!((iter - 0.5).abs() < 0.01, "GPU iteration time {iter}");
        // Even the LAN is a bottleneck for a dense 17 MB model.
        let lan = 5.0 * dlion_simnet::transfer_seconds(17e6, LAN_MBPS);
        assert!(lan > iter, "GPU LAN comm {lan} must exceed compute {iter}");
    }
}
