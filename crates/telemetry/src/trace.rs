//! Structured JSONL tracing.
//!
//! Records are emitted through a process-global sink (installed by
//! [`open_trace_file`] / [`set_trace_writer`]) but *keyed* per run: the
//! simulator installs a [`run_scope`] on its thread before processing
//! events, and every record emitted under that scope carries the run's
//! `{system, env, seed}` identity plus a per-run monotonic `seq`. Because
//! each simulated run executes on exactly one thread, `(vtime, seq)` is a
//! deterministic total order of that run's records even when several runs
//! trace concurrently into one file — readers group by `(system, env,
//! seed)` and sort by `seq`. `wall_ns` (nanoseconds since process start) is
//! advisory and the only nondeterministic field.

use crate::json;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A typed field value on a trace record.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => json::f64_into(*v, out),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => json::escape_into(s, out),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value { Value::$variant(v as $cast) }
        })*
    };
}
value_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64,
            f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
/// Sequence numbers for records emitted outside any run scope (CLI-level
/// logs); per-run records use the scope's own deterministic counter.
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Is a trace sink installed? The fast gate for every instrumentation site.
#[inline]
pub fn tracing_on() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Install an arbitrary writer as the trace sink and enable tracing.
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    *SINK.lock().unwrap() = Some(w);
    TRACING.store(true, Ordering::Relaxed);
}

/// Open `path`, truncating, as the JSONL trace sink (the `--trace-out`
/// flag) — buffered; call [`flush_trace`] or [`stop_trace`] to flush.
pub fn open_trace_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let f = File::create(path)?;
    set_trace_writer(Box::new(BufWriter::new(f)));
    Ok(())
}

/// Flush the sink without closing it.
pub fn flush_trace() {
    if let Some(w) = SINK.lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// Disable tracing and close (flush + drop) the sink.
pub fn stop_trace() {
    TRACING.store(false, Ordering::Relaxed);
    if let Some(mut w) = SINK.lock().unwrap().take() {
        let _ = w.flush();
    }
}

fn wall_ns() -> u64 {
    static T0: OnceLock<Instant> = OnceLock::new();
    T0.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

struct Ctx {
    system: String,
    env: String,
    seed: u64,
    seq: u64,
    depth: u32,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Guard restoring the previous run context on drop (contexts nest).
pub struct RunScope {
    prev: Option<Ctx>,
}

/// Enter a run context on this thread: records emitted until the guard
/// drops carry `{system, env, seed}` and draw from a fresh `seq` counter.
pub fn run_scope(system: &str, env: &str, seed: u64) -> RunScope {
    let prev = CTX.with(|c| {
        c.borrow_mut().replace(Ctx {
            system: system.to_string(),
            env: env.to_string(),
            seed,
            seq: 0,
            depth: 0,
        })
    });
    RunScope { prev }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn span_depth() -> u32 {
    CTX.with(|c| c.borrow().as_ref().map_or(0, |ctx| ctx.depth))
}

/// Emit one structured record. Prefer the [`crate::event!`] macro, which
/// skips field construction entirely when tracing is off.
pub fn emit(vtime: f64, worker: Option<usize>, kind: &str, fields: &[(&str, Value)]) {
    if !tracing_on() {
        return;
    }
    let mut line = String::with_capacity(160);
    line.push_str("{\"wall_ns\":");
    line.push_str(&wall_ns().to_string());
    line.push_str(",\"vtime\":");
    json::f64_into(vtime, &mut line);
    CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        match ctx.as_mut() {
            Some(ctx) => {
                line.push_str(",\"seq\":");
                line.push_str(&ctx.seq.to_string());
                ctx.seq += 1;
                line.push_str(",\"system\":");
                json::escape_into(&ctx.system, &mut line);
                line.push_str(",\"env\":");
                json::escape_into(&ctx.env, &mut line);
                line.push_str(",\"seed\":");
                line.push_str(&ctx.seed.to_string());
            }
            None => {
                line.push_str(",\"seq\":");
                line.push_str(&GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed).to_string());
                line.push_str(",\"system\":null,\"env\":null,\"seed\":null");
            }
        }
    });
    line.push_str(",\"worker\":");
    match worker {
        Some(w) => line.push_str(&w.to_string()),
        None => line.push_str("null"),
    }
    line.push_str(",\"kind\":");
    json::escape_into(kind, &mut line);
    line.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        json::escape_into(k, &mut line);
        line.push(':');
        v.write_json(&mut line);
    }
    line.push_str("}}\n");
    if let Some(w) = SINK.lock().unwrap().as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

/// RAII span: `span_open` on creation, `span_close` with the wall-clock
/// duration on drop. Inert (no clock read) when tracing is off.
pub struct Span {
    name: &'static str,
    vtime: f64,
    start: Option<Instant>,
}

/// Open a span (see [`crate::span!`]).
pub fn span(vtime: f64, name: &'static str) -> Span {
    if !tracing_on() {
        return Span {
            name,
            vtime,
            start: None,
        };
    }
    let depth = CTX.with(|c| {
        c.borrow_mut().as_mut().map_or(0, |ctx| {
            ctx.depth += 1;
            ctx.depth
        })
    });
    emit(
        vtime,
        None,
        "span_open",
        &[("name", Value::from(name)), ("depth", Value::from(depth))],
    );
    Span {
        name,
        vtime,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(t0) = self.start else { return };
        let depth = CTX.with(|c| c.borrow().as_ref().map_or(0, |ctx| ctx.depth));
        emit(
            self.vtime,
            None,
            "span_close",
            &[
                ("name", Value::from(self.name)),
                ("depth", Value::from(depth)),
                ("dur_ns", Value::from(t0.elapsed().as_nanos() as u64)),
            ],
        );
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.depth = ctx.depth.saturating_sub(1);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{channel, Sender};

    /// A sink that forwards each written chunk over a channel, so tests can
    /// inspect the exact lines without touching the filesystem.
    struct ChannelSink(Sender<Vec<u8>>);
    impl Write for ChannelSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let _ = self.0.send(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    // Sink state is process-global, so everything trace-related lives in
    // one test (cargo runs tests in this binary concurrently).
    #[test]
    fn records_spans_and_contexts() {
        let (tx, rx) = channel();
        set_trace_writer(Box::new(ChannelSink(tx)));
        assert!(tracing_on());

        {
            let _run = run_scope("DLion", "Homo A", 7);
            emit(1.5, Some(3), "iter_done", &[("loss", Value::from(0.25f64))]);
            {
                let s1 = span(2.0, "outer");
                assert_eq!(span_depth(), 1);
                {
                    let _s2 = span(2.0, "inner");
                    assert_eq!(span_depth(), 2);
                }
                assert_eq!(span_depth(), 1);
                drop(s1);
            }
            assert_eq!(span_depth(), 0);
        }
        // Outside the run scope: null run identity, global seq.
        emit(f64::NAN, None, "log", &[("msg", Value::from("hi"))]);
        stop_trace();
        assert!(!tracing_on());
        emit(0.0, None, "dropped", &[]); // must be a no-op

        let lines: Vec<String> = rx
            .try_iter()
            .map(|b| String::from_utf8(b).unwrap())
            .collect();
        assert_eq!(lines.len(), 6, "{lines:?}");

        // Schema round-trip through the in-crate parser.
        let recs: Vec<crate::json::Json> = lines
            .iter()
            .map(|l| crate::json::parse(l.trim()).unwrap())
            .collect();
        for r in &recs {
            for key in [
                "wall_ns", "vtime", "seq", "system", "env", "seed", "worker", "kind", "fields",
            ] {
                assert!(r.get(key).is_some(), "missing {key} in {r:?}");
            }
        }
        let first = &recs[0];
        assert_eq!(first.get("kind").unwrap().as_str(), Some("iter_done"));
        assert_eq!(first.get("system").unwrap().as_str(), Some("DLion"));
        assert_eq!(first.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(first.get("worker").unwrap().as_u64(), Some(3));
        assert_eq!(first.get("vtime").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            first.get("fields").unwrap().get("loss").unwrap().as_f64(),
            Some(0.25)
        );

        // Per-run seq is monotonic from 0.
        for (i, r) in recs[..5].iter().enumerate() {
            assert_eq!(r.get("seq").unwrap().as_u64(), Some(i as u64));
        }

        // Span nesting: open(1), open(2), close(2), close(1).
        let span_depths: Vec<(Option<&str>, u64)> = recs[1..5]
            .iter()
            .map(|r| {
                (
                    r.get("kind").unwrap().as_str(),
                    r.get("fields")
                        .unwrap()
                        .get("depth")
                        .unwrap()
                        .as_u64()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(
            span_depths,
            vec![
                (Some("span_open"), 1),
                (Some("span_open"), 2),
                (Some("span_close"), 2),
                (Some("span_close"), 1),
            ]
        );
        let close_inner = &recs[3];
        assert!(close_inner
            .get("fields")
            .unwrap()
            .get("dur_ns")
            .unwrap()
            .as_u64()
            .is_some());

        // The out-of-scope record has a null identity and null vtime.
        let last = &recs[5];
        assert!(last.get("system").unwrap().is_null());
        assert!(last.get("seed").unwrap().is_null());
        assert!(last.get("vtime").unwrap().is_null());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-2i32), Value::I64(-2));
        assert_eq!(Value::from(1.5f32), Value::F64(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }
}
