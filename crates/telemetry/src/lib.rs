//! # dlion-telemetry
//!
//! The observability layer of the DLion reproduction. Zero external
//! dependencies, and deterministic by construction: every structured trace
//! record is keyed on *virtual* time plus a per-run monotonic sequence
//! number, so two runs of the same seed produce the same event stream (only
//! the advisory `wall_ns` field differs). Everything is off by default and
//! compiled down to an atomic load + branch when disabled, so the simulator
//! hot path is unaffected unless a sink is installed.
//!
//! Four sub-systems:
//!
//! * **Leveled logging** ([`error!`]/[`warn!`]/[`info!`]/[`debug!`]/
//!   [`trace!`]) with per-target filtering configured from the `DLION_LOG`
//!   environment variable (e.g. `DLION_LOG=info,core.runner=debug`). Log
//!   lines go to stderr — stdout stays reserved for tables and CSV.
//! * **Structured tracing** ([`event!`], [`span!`], [`trace::emit`]): JSONL
//!   records `{wall_ns, vtime, seq, system, env, seed, worker, kind,
//!   fields}` appended to a sink installed with
//!   [`trace::open_trace_file`] (the `--trace-out` flag).
//! * **Metrics** ([`Registry`]): counters, max-gauges and exponential
//!   histograms aggregated per run and dumped alongside `RunMetrics`.
//! * **Profiling** ([`profiler`]): wall-clock per-phase totals
//!   (forward/backward/gemm/serialize/event-queue/eval) collected by RAII
//!   scope guards and rendered as the `--profile` summary table.

pub mod json;
pub mod metrics;
pub mod profiler;
pub mod trace;

pub use metrics::{Histogram, Registry};
pub use profiler::{profile_scope, Phase, PhaseStat};
pub use trace::{
    emit, flush_trace, open_trace_file, run_scope, set_trace_writer, span, span_depth, stop_trace,
    tracing_on, RunScope, Span, Value,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name; `off`/`none` parse as `None` (logging disabled).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        Some(match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" | "0" => None,
            _ => return None,
        })
    }
}

/// Highest level enabled by any filter rule (0 = logging fully off). The
/// fast gate every log macro checks before taking any lock.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

struct LogFilter {
    /// Level for targets with no matching rule (0 = off).
    default_level: u8,
    /// `(target prefix, level)` rules; longest matching prefix wins.
    rules: Vec<(String, u8)>,
}

static FILTER: Mutex<LogFilter> = Mutex::new(LogFilter {
    default_level: 0,
    rules: Vec::new(),
});

/// Configure the log filter from a `DLION_LOG`-style spec: a comma list of
/// either a bare default level (`debug`) or `target=level` rules
/// (`info,simnet=off,core.runner=trace`). Unknown tokens are ignored.
pub fn set_log_filter(spec: &str) {
    let mut default_level = 0u8;
    let mut rules: Vec<(String, u8)> = Vec::new();
    for tok in spec.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        match tok.split_once('=') {
            Some((target, lvl)) => {
                if let Some(l) = Level::parse(lvl.trim()) {
                    rules.push((target.trim().to_string(), l.map_or(0, |l| l as u8)));
                }
            }
            None => {
                if let Some(l) = Level::parse(tok) {
                    default_level = l.map_or(0, |l| l as u8);
                }
            }
        }
    }
    // Longest prefix first so the first match is the most specific.
    rules.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
    let max = rules.iter().map(|&(_, l)| l).fold(default_level, u8::max);
    let mut f = FILTER.lock().unwrap();
    f.default_level = default_level;
    f.rules = rules;
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Initialize the log filter from `DLION_LOG`, falling back to
/// `default_spec` when the variable is unset.
pub fn init_from_env(default_spec: &str) {
    match std::env::var("DLION_LOG") {
        Ok(spec) => set_log_filter(&spec),
        Err(_) => set_log_filter(default_spec),
    }
}

/// Would a log record at `level` for `target` be emitted?
#[inline]
pub fn log_enabled(target: &str, level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if level as u8 > max {
        return false;
    }
    let f = FILTER.lock().unwrap();
    let lvl = f
        .rules
        .iter()
        .find(|(prefix, _)| target.starts_with(prefix.as_str()))
        .map_or(f.default_level, |&(_, l)| l);
    level as u8 <= lvl
}

/// Emit one log record (already filtered — use the macros, not this).
#[doc(hidden)]
pub fn do_log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let msg = std::fmt::format(args);
    eprintln!("[{:>5} {target}] {msg}", level.name());
    if tracing_on() {
        emit(
            f64::NAN,
            None,
            "log",
            &[
                ("level", Value::from(level.name())),
                ("target", Value::from(target)),
                ("msg", Value::Str(msg)),
            ],
        );
    }
}

/// Log at an explicit level: `log_at!(Level::Info, target: "x", "...", ..)`.
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, target: $target:expr, $($arg:tt)+) => {{
        let lvl = $lvl;
        let target = $target;
        if $crate::log_enabled(target, lvl) {
            $crate::do_log(lvl, target, format_args!($($arg)+));
        }
    }};
}

macro_rules! leveled {
    ($d:tt $name:ident, $lvl:ident) => {
        #[macro_export]
        macro_rules! $name {
                    (target: $d t:expr, $d($d a:tt)+) => {
                        $crate::log_at!($crate::Level::$lvl, target: $d t, $d($d a)+)
                    };
                    ($d($d a:tt)+) => {
                        $crate::log_at!($crate::Level::$lvl, target: module_path!(), $d($d a)+)
                    };
                }
    };
}

leveled!($ error, Error);
leveled!($ warn, Warn);
leveled!($ info, Info);
leveled!($ debug, Debug);
leveled!($ trace, Trace);

/// Emit a structured trace event (no-op unless tracing is on):
///
/// ```ignore
/// event!(vtime, "iter_done"; "loss" => loss, "iter" => it);
/// event!(vtime, w: worker, "msg"; "kind" => "grad");
/// ```
#[macro_export]
macro_rules! event {
    ($vt:expr, w: $w:expr, $kind:expr $(; $($k:literal => $v:expr),* $(,)?)?) => {
        if $crate::tracing_on() {
            $crate::emit($vt, Some($w), $kind, &[$($(($k, $crate::Value::from($v))),*)?]);
        }
    };
    ($vt:expr, $kind:expr $(; $($k:literal => $v:expr),* $(,)?)?) => {
        if $crate::tracing_on() {
            $crate::emit($vt, None, $kind, &[$($(($k, $crate::Value::from($v))),*)?]);
        }
    };
}

/// Open a named span: emits `span_open` now and `span_close` (with the
/// wall-clock duration) when the returned guard drops. No-op when tracing
/// is off.
#[macro_export]
macro_rules! span {
    ($vt:expr, $name:expr) => {
        $crate::span($vt, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Filter state is process-global; exercise it in ONE test to avoid
    // cross-test races.
    #[test]
    fn filter_rules_and_levels() {
        set_log_filter("info,core.runner=debug,simnet=off");
        assert!(log_enabled("experiments.sweep", Level::Info));
        assert!(!log_enabled("experiments.sweep", Level::Debug));
        assert!(log_enabled("core.runner", Level::Debug));
        assert!(!log_enabled("core.runner", Level::Trace));
        assert!(!log_enabled("simnet.net", Level::Error));

        set_log_filter("off");
        assert!(!log_enabled("anything", Level::Error));

        // Unknown tokens are ignored; empty spec turns everything off.
        set_log_filter("bogus,alsobad=nope");
        assert!(!log_enabled("x", Level::Error));

        set_log_filter("trace");
        assert!(log_enabled("x", Level::Trace));
        set_log_filter("");
        assert!(!log_enabled("x", Level::Error));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("DEBUG"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("warning"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("nonsense"), None);
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Info.name(), "info");
    }
}
