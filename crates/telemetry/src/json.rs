//! Minimal JSON support: escaping/number formatting for the JSONL trace
//! writer, and a small recursive-descent parser used by the schema
//! round-trip tests and the `dlion-trace-check` validator. Covers the full
//! JSON grammar (objects, arrays, strings with `\uXXXX` escapes including
//! surrogate pairs, numbers, booleans, null); numbers are parsed as `f64`,
//! which is lossless for every value the tracer emits.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON-valid number (non-finite values become `null`).
pub fn f64_into(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` on f64 is Rust's shortest round-trip formatting, but yields
        // bare "1" for integral values — still valid JSON.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -1.5e3 ").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x,y"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x,y"));
        match v.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert!(items[2].get("b").unwrap().is_null());
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f —— \u{1F600}";
        let mut enc = String::new();
        escape_into(nasty, &mut enc);
        assert_eq!(parse(&enc).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        // Raw (unescaped) UTF-8 also passes through.
        assert_eq!(parse("\"😀\"").unwrap(), Json::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn f64_formatting() {
        let mut s = String::new();
        f64_into(1.5, &mut s);
        assert_eq!(s, "1.5");
        s.clear();
        f64_into(f64::NAN, &mut s);
        assert_eq!(s, "null");
        s.clear();
        f64_into(3.0, &mut s);
        assert_eq!(parse(&s).unwrap().as_u64(), Some(3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("").is_err());
    }
}
