//! Per-run counters, max-gauges and exponential histograms.
//!
//! A [`Registry`] is plain owned data (no globals, no locks): the simulator
//! owns one per run, updates it with `&'static str` keys on the event path,
//! and snapshots it into `RunMetrics` at the end. Everything recorded is a
//! function of *virtual* time and simulated quantities, so registries are
//! bit-identical across repeated runs of the same seed — they are safe to
//! compare in determinism tests and never feed wall-clock noise into
//! results.

use crate::json;
use std::collections::BTreeMap;

/// A histogram over exponentially-spaced buckets, plus exact count / sum /
/// min / max of everything recorded.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets (ascending); one overflow bucket
    /// past the last edge.
    edges: Vec<f64>,
    /// `edges.len() + 1` counts; `counts[i]` is values `<= edges[i]` (and
    /// greater than the previous edge), the last entry is the overflow.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Buckets with upper bounds `first, first*factor, first*factor², …`
    /// (`n` finite buckets plus overflow).
    pub fn exponential(first: f64, factor: f64, n: usize) -> Self {
        assert!(first > 0.0 && factor > 1.0 && n >= 1);
        let mut edges = Vec::with_capacity(n);
        let mut e = first;
        for _ in 0..n {
            edges.push(e);
            e *= factor;
        }
        Histogram {
            counts: vec![0; edges.len() + 1],
            edges,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, v: f64) {
        let b = self.edges.partition_point(|&e| e < v);
        self.counts[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// `(bucket upper bounds, per-bucket counts)`; counts has one extra
    /// overflow entry.
    pub fn buckets(&self) -> (&[f64], &[u64]) {
        (&self.edges, &self.counts)
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// where the cumulative count crosses `q·count` (the exact max for the
    /// overflow bucket; 0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return if i < self.edges.len() {
                    self.edges[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        json::f64_into(self.sum, out);
        out.push_str(",\"min\":");
        json::f64_into(self.min(), out);
        out.push_str(",\"max\":");
        json::f64_into(self.max(), out);
        out.push_str(",\"p50\":");
        json::f64_into(self.quantile(0.5), out);
        out.push_str(",\"p99\":");
        json::f64_into(self.quantile(0.99), out);
        out.push_str(",\"buckets\":[");
        let mut wrote = false;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if wrote {
                out.push(',');
            }
            wrote = true;
            out.push('[');
            if i < self.edges.len() {
                json::f64_into(self.edges[i], out);
            } else {
                out.push_str("null");
            }
            out.push(',');
            out.push_str(&c.to_string());
            out.push(']');
        }
        out.push_str("]}");
    }
}

impl Default for Histogram {
    /// 1e-6 · 4ᵏ for k in 0..24 — spans microseconds to ~10⁷ in whatever
    /// unit is recorded (seconds, bytes, entries).
    fn default() -> Self {
        Histogram::exponential(1e-6, 4.0, 24)
    }
}

/// A per-run metrics registry: named counters, max-gauges and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Track the maximum value this gauge ever took.
    pub fn gauge_max(&mut self, name: &'static str, v: f64) {
        let g = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if v > *g {
            *g = v;
        }
    }

    /// Record `v` into the named histogram (default exponential buckets).
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.hists.entry(name).or_default().record(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// One JSON object with `counters`, `gauges` and `hists` members
    /// (deterministic key order — BTreeMap iteration).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::escape_into(k, &mut s);
            s.push(':');
            s.push_str(&v.to_string());
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::escape_into(k, &mut s);
            s.push(':');
            json::f64_into(*v, &mut s);
        }
        s.push_str("},\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::escape_into(k, &mut s);
            s.push(':');
            h.write_json(&mut s);
        }
        s.push_str("}}");
        s
    }

    /// Aligned human-readable summary (for `--profile` / reports).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &self.counters {
                s.push_str(&format!("  {k:<28} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges (max):\n");
            for (k, v) in &self.gauges {
                s.push_str(&format!("  {k:<28} {v:>14.3}\n"));
            }
        }
        if !self.hists.is_empty() {
            s.push_str("histograms:\n");
            s.push_str(&format!(
                "  {:<28} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "count", "mean", "p50", "p99", "max"
            ));
            for (k, h) in &self.hists {
                s.push_str(&format!(
                    "  {k:<28} {:>10} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max()
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::exponential(1.0, 2.0, 4); // edges 1,2,4,8
        for v in [0.5, 1.0, 1.5, 3.0, 8.0, 100.0] {
            h.record(v);
        }
        let (edges, counts) = h.buckets();
        assert_eq!(edges, &[1.0, 2.0, 4.0, 8.0]);
        // 0.5,1.0 <= 1 | 1.5 <= 2 | 3.0 <= 4 | 8.0 <= 8 | 100 overflow.
        assert_eq!(counts, &[2, 1, 1, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 114.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 19.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_edge_values_land_in_lower_bucket() {
        let mut h = Histogram::exponential(1.0, 10.0, 2); // edges 1,10
        h.record(1.0);
        h.record(10.0);
        h.record(10.000001);
        assert_eq!(h.buckets().1, &[1, 1, 1]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::exponential(1.0, 2.0, 8);
        for _ in 0..99 {
            h.record(1.5); // bucket (1,2]
        }
        h.record(200.0); // beyond: bucket (128, 256]... within edges (max 128)? 200 > 128 -> overflow
        assert_eq!(h.quantile(0.5), 2.0);
        // p100 hits the overflow bucket and reports the exact max.
        assert_eq!(h.quantile(1.0), 200.0);
        // Quantile caps at the observed max even inside a wide bucket.
        let mut one = Histogram::exponential(1.0, 100.0, 2);
        one.record(1.7);
        assert_eq!(one.quantile(0.5), 1.7);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.9), 0.0);
    }

    #[test]
    fn registry_accumulates() {
        let mut r = Registry::default();
        r.inc("msgs_sent");
        r.add("msgs_sent", 4);
        r.gauge_max("queue_depth", 3.0);
        r.gauge_max("queue_depth", 9.0);
        r.gauge_max("queue_depth", 5.0);
        r.observe("iter_secs", 0.5);
        r.observe("iter_secs", 1.5);
        assert_eq!(r.counter("msgs_sent"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("queue_depth"), Some(9.0));
        assert_eq!(r.histogram("iter_secs").unwrap().count(), 2);
        assert!(!r.is_empty());
        assert!(Registry::default().is_empty());
    }

    #[test]
    fn registry_json_parses_and_is_deterministic() {
        let mut r = Registry::default();
        r.add("b_second", 2);
        r.add("a_first", 1);
        r.gauge_max("g", 1.25);
        r.observe("h", 3.0);
        let j = r.to_json();
        assert_eq!(j, r.clone().to_json());
        let v = crate::json::parse(&j).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a_first").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(1.25)
        );
        assert_eq!(
            v.get("hists")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // Table rendering mentions every name.
        let t = r.render_table();
        for name in ["a_first", "b_second", "g", "h", "p99"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }

    #[test]
    fn registries_compare_equal_across_identical_runs() {
        let run = || {
            let mut r = Registry::default();
            for i in 0..100 {
                r.inc("events");
                r.observe("x", (i as f64) * 0.1);
                r.gauge_max("depth", (i % 7) as f64);
            }
            r
        };
        assert_eq!(run(), run());
    }
}
