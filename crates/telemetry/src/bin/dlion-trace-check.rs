//! `dlion-trace-check` — validate a `--trace-out` JSONL file.
//!
//! Every line must parse as a JSON object carrying the full record schema
//! (`wall_ns`, `vtime`, `seq`, `system`, `env`, `seed`, `worker`, `kind`,
//! `fields`), and per-run sequence numbers must be monotonic. Each
//! (repeatable) `--require KIND` additionally demands at least one record
//! of that kind — how CI asserts a run actually exercised a subsystem
//! (e.g. `--require gbs_adjust` for the live batching controller, or
//! `--require cluster_health` for the health plane). Event kinds with a
//! pinned field schema (the health-plane events below) are additionally
//! checked field-for-field on every record. `--summary` prints a per-kind
//! table with record counts and first/last vtime instead of the one-line
//! report. Exits 0 on success; exits 1 with the first offending line (or
//! the missing kind) otherwise. Used by the CI telemetry smoke jobs.

use dlion_telemetry::json::{self, Json};
use std::collections::BTreeMap;

const REQUIRED_KEYS: [&str; 9] = [
    "wall_ns", "vtime", "seq", "system", "env", "seed", "worker", "kind", "fields",
];

/// Event kinds whose `fields` layout is pinned: every record of the kind
/// must carry exactly these keys. The health plane's events (DESIGN.md
/// §4h) and the topology plane's round event (DESIGN.md §4i) are
/// fixed-key by design so traces stay diffable across runs.
const SCHEMAS: [(&str, &[&str]); 5] = [
    (
        "cluster_health",
        &[
            "iterations",
            "rounds",
            "rate",
            "score",
            "silent",
            "departed",
            "straggler",
        ],
    ),
    (
        "worker_health",
        &[
            "round",
            "iter",
            "rate",
            "gbs_round",
            "deferred",
            "sendq",
            "scratch_hw",
        ],
    ),
    (
        "frame_latency",
        &[
            "peer",
            "frames",
            "depth_hw",
            "queue_p50_us",
            "queue_p99_us",
            "write_p50_us",
            "write_p99_us",
            "read_p99_us",
            "apply_p99_us",
        ],
    ),
    ("health_silence", &["peer", "iter"]),
    (
        "topology_round",
        &["round", "topology", "neighbors", "links"],
    ),
];

fn check_line(n: usize, line: &str) -> Result<Json, String> {
    let v = json::parse(line).map_err(|e| format!("line {n}: bad JSON: {e}"))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(format!("line {n}: not a JSON object"));
    }
    for key in REQUIRED_KEYS {
        if v.get(key).is_none() {
            return Err(format!("line {n}: missing required key {key:?}"));
        }
    }
    if v.get("kind").unwrap().as_str().is_none() {
        return Err(format!("line {n}: \"kind\" must be a string"));
    }
    if v.get("seq").unwrap().as_u64().is_none() {
        return Err(format!("line {n}: \"seq\" must be a non-negative integer"));
    }
    if !matches!(v.get("fields"), Some(Json::Obj(_))) {
        return Err(format!("line {n}: \"fields\" must be an object"));
    }
    let kind = v.get("kind").unwrap().as_str().unwrap();
    if let Some((_, keys)) = SCHEMAS.iter().find(|(k, _)| *k == kind) {
        let fields = v.get("fields").unwrap();
        for key in *keys {
            if fields.get(key).is_none() {
                return Err(format!("line {n}: {kind:?} record missing field {key:?}"));
            }
        }
        let Json::Obj(members) = fields else {
            unreachable!("checked above")
        };
        if members.len() != keys.len() {
            return Err(format!(
                "line {n}: {kind:?} record has {} fields, schema pins {}",
                members.len(),
                keys.len()
            ));
        }
    }
    Ok(v)
}

/// Per-kind aggregate for the summary table.
struct KindStats {
    count: usize,
    first_vt: f64,
    last_vt: f64,
}

fn run(path: &str, required: &[String], summary: bool) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = 0usize;
    let mut kinds: BTreeMap<String, KindStats> = BTreeMap::new();
    // Per-run (system, env, seed) -> last seen seq, for monotonicity.
    let mut last_seq: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = check_line(i + 1, line)?;
        records += 1;
        let kind = v.get("kind").unwrap().as_str().unwrap().to_string();
        let vt = v.get("vtime").and_then(|x| x.as_f64()).unwrap_or(0.0);
        let entry = kinds.entry(kind).or_insert(KindStats {
            count: 0,
            first_vt: vt,
            last_vt: vt,
        });
        entry.count += 1;
        entry.first_vt = entry.first_vt.min(vt);
        entry.last_vt = entry.last_vt.max(vt);
        let run_key = format!(
            "{:?}/{:?}/{:?}",
            v.get("system").unwrap(),
            v.get("env").unwrap(),
            v.get("seed").unwrap()
        );
        let seq = v.get("seq").unwrap().as_u64().unwrap();
        if let Some(&prev) = last_seq.get(&run_key) {
            if seq <= prev {
                return Err(format!(
                    "line {}: seq {seq} not monotonic within run {run_key} (prev {prev})",
                    i + 1
                ));
            }
        }
        last_seq.insert(run_key, seq);
    }
    if records == 0 {
        return Err(format!("{path}: no records"));
    }
    for kind in required {
        if !kinds.contains_key(kind) {
            return Err(format!(
                "{path}: no {kind:?} records (required via --require)"
            ));
        }
    }
    let mut out = format!("{path}: {records} records, {} run(s) OK\n", last_seq.len());
    if summary {
        out.push_str(&format!(
            "  {:<20} {:>8} {:>12} {:>12}\n",
            "kind", "count", "first_vtime", "last_vtime"
        ));
        for (kind, s) in &kinds {
            out.push_str(&format!(
                "  {kind:<20} {:>8} {:>12.6} {:>12.6}\n",
                s.count, s.first_vt, s.last_vt
            ));
        }
    } else {
        for (kind, s) in &kinds {
            out.push_str(&format!("  {kind:<16} {:>8}\n", s.count));
        }
    }
    Ok(out)
}

/// Split a `--require` value into kinds: the flag is repeatable AND takes
/// comma-separated lists, so `--require a --require b` ≡ `--require a,b`.
fn push_required(required: &mut Vec<String>, value: &str) {
    required.extend(
        value
            .split(',')
            .filter(|k| !k.is_empty())
            .map(str::to_string),
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut summary = false;
    let usage = || -> ! {
        eprintln!(
            "usage: dlion-trace-check <trace.jsonl> [--require KIND[,KIND...]]... [--summary]"
        );
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => match args.next() {
                Some(kinds) => push_required(&mut required, &kinds),
                None => usage(),
            },
            "--summary" => summary = true,
            _ if path.is_none() && !arg.starts_with("--") => path = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    match run(&path, &required, summary) {
        Ok(summary) => print!("{summary}"),
        Err(e) => {
            eprintln!("trace check FAILED: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"wall_ns":1,"vtime":0.5,"seq":0,"system":"DLion","env":"Homo A","seed":1,"worker":0,"kind":"iter_done","fields":{"loss":1.5}}"#;

    #[test]
    fn accepts_valid_lines() {
        assert!(check_line(1, GOOD).is_ok());
    }

    #[test]
    fn rejects_missing_keys_and_bad_json() {
        assert!(check_line(1, "{\"vtime\":1}").is_err());
        assert!(check_line(1, "not json").is_err());
        assert!(check_line(1, "[1,2,3]").is_err());
        let no_kind = GOOD.replace("\"kind\":\"iter_done\",", "");
        assert!(check_line(1, &no_kind).is_err());
    }

    #[test]
    fn file_validation_and_monotonic_seq() {
        let dir = std::env::temp_dir().join("dlion-trace-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good_path = dir.join("good.jsonl");
        let second = GOOD.replace("\"seq\":0", "\"seq\":1");
        std::fs::write(&good_path, format!("{GOOD}\n{second}\n")).unwrap();
        let summary = run(good_path.to_str().unwrap(), &[], false).unwrap();
        assert!(summary.contains("2 records"));
        assert!(summary.contains("iter_done"));

        let bad_path = dir.join("bad.jsonl");
        std::fs::write(&bad_path, format!("{GOOD}\n{GOOD}\n")).unwrap();
        let err = run(bad_path.to_str().unwrap(), &[], false).unwrap_err();
        assert!(err.contains("not monotonic"), "{err}");

        let empty_path = dir.join("empty.jsonl");
        std::fs::write(&empty_path, "").unwrap();
        assert!(run(empty_path.to_str().unwrap(), &[], false).is_err());
    }

    #[test]
    fn summary_mode_reports_vtime_span_per_kind() {
        let dir = std::env::temp_dir().join("dlion-trace-check-summary");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let second = GOOD
            .replace("\"seq\":0", "\"seq\":1")
            .replace("\"vtime\":0.5", "\"vtime\":2.25");
        std::fs::write(&path, format!("{GOOD}\n{second}\n")).unwrap();
        let summary = run(path.to_str().unwrap(), &[], true).unwrap();
        assert!(summary.contains("first_vtime"), "{summary}");
        assert!(summary.contains("0.500000"), "{summary}");
        assert!(summary.contains("2.250000"), "{summary}");
    }

    #[test]
    fn health_schemas_are_pinned_field_for_field() {
        let silence = GOOD
            .replace("\"kind\":\"iter_done\"", "\"kind\":\"health_silence\"")
            .replace("{\"loss\":1.5}", "{\"peer\":1,\"iter\":10}");
        assert!(check_line(1, &silence).is_ok());
        // A missing schema key fails, naming the key...
        let missing = silence.replace("\"iter\":10", "\"later\":10");
        let err = check_line(1, &missing).unwrap_err();
        assert!(err.contains("\"iter\""), "{err}");
        // ...and so does an extra field (schemas pin the exact key set).
        let extra = silence.replace("\"iter\":10", "\"iter\":10,\"extra\":1");
        let err = check_line(1, &extra).unwrap_err();
        assert!(err.contains("schema pins"), "{err}");
        // Unpinned kinds still take any fields object.
        assert!(check_line(1, GOOD).is_ok());
        let ch = GOOD
            .replace("\"kind\":\"iter_done\"", "\"kind\":\"cluster_health\"")
            .replace(
                "{\"loss\":1.5}",
                "{\"iterations\":24,\"rounds\":6,\"rate\":20,\"score\":1,\"silent\":0,\"departed\":0,\"straggler\":0}",
            );
        assert!(check_line(1, &ch).is_ok());
    }

    #[test]
    fn topology_round_schema_is_pinned_field_for_field() {
        let tr = GOOD
            .replace("\"kind\":\"iter_done\"", "\"kind\":\"topology_round\"")
            .replace(
                "{\"loss\":1.5}",
                "{\"round\":3,\"topology\":\"kregular:2\",\"neighbors\":2,\"links\":6}",
            );
        assert!(check_line(1, &tr).is_ok());
        let missing = tr.replace("\"links\":6", "\"edges\":6");
        let err = check_line(1, &missing).unwrap_err();
        assert!(err.contains("\"links\""), "{err}");
        let extra = tr.replace("\"links\":6", "\"links\":6,\"hub\":0");
        let err = check_line(1, &extra).unwrap_err();
        assert!(err.contains("schema pins"), "{err}");
    }

    #[test]
    fn require_values_split_on_commas() {
        let mut req = Vec::new();
        push_required(&mut req, "topology_round,cluster_health");
        push_required(&mut req, "gbs_adjust");
        push_required(&mut req, ""); // empty value adds nothing
        assert_eq!(req, vec!["topology_round", "cluster_health", "gbs_adjust"]);
    }

    #[test]
    fn required_kinds_must_be_present() {
        let dir = std::env::temp_dir().join("dlion-trace-check-require");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, format!("{GOOD}\n")).unwrap();
        let p = path.to_str().unwrap();
        // The kind in the file satisfies the requirement...
        assert!(run(p, &["iter_done".to_string()], false).is_ok());
        // ...an absent one fails, naming the kind.
        let err = run(
            p,
            &["iter_done".to_string(), "gbs_adjust".to_string()],
            false,
        )
        .unwrap_err();
        assert!(err.contains("gbs_adjust"), "{err}");
    }
}
