//! `dlion-top` — a refreshing text dashboard over a health trace stream.
//!
//! ```text
//! dlion-top <trace.jsonl> [--once] [--interval S]
//! ```
//!
//! Point it at the `--trace-out` file of a run started with
//! `--health-interval`: it tails the JSONL stream and renders a per-worker
//! / per-link cluster view every `--interval` seconds (default 1.0),
//! clearing the screen between refreshes like `top`. `--once` reads the
//! whole file, prints one snapshot and exits — the mode CI uses to render
//! a recorded stream.
//!
//! The dashboard consumes the health plane's fixed-key events
//! (`worker_health`, `health_silence`, `cluster_health`, `frame_latency`)
//! plus `peer_departed` and the topology plane's `topology_round` (active
//! topology name in the header, per-worker neighbor count in the NBRS
//! column); all other kinds count toward the record total but
//! render nothing. Lines that do not parse are skipped silently — a live
//! tail can observe a torn final line that the next refresh completes.

use dlion_telemetry::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;

/// Latest `worker_health` report from one worker.
#[derive(Clone, Debug, Default)]
struct WorkerRow {
    round: u64,
    iter: u64,
    rate: f64,
    gbs_round: u64,
    deferred: u64,
    sendq: u64,
    scratch_hw: u64,
}

/// One worker's row of the final `cluster_health` verdict.
#[derive(Clone, Debug, Default)]
struct ClusterRow {
    iterations: u64,
    rate: f64,
    score: f64,
    silent: bool,
    departed: bool,
}

/// End-of-run `frame_latency` percentiles for one directed link.
#[derive(Clone, Debug, Default)]
struct LinkRow {
    frames: u64,
    depth_hw: u64,
    queue_p50_us: f64,
    queue_p99_us: f64,
    write_p99_us: f64,
    read_p99_us: f64,
    apply_p99_us: f64,
}

/// Everything the dashboard knows, folded from the stream so far.
#[derive(Debug, Default)]
struct State {
    records: usize,
    workers: BTreeMap<usize, WorkerRow>,
    silent: BTreeSet<usize>,
    departed: BTreeSet<usize>,
    cluster: BTreeMap<usize, ClusterRow>,
    /// The cluster-level straggler verdict, once `cluster_health` arrives.
    straggler: Option<usize>,
    links: BTreeMap<(usize, usize), LinkRow>,
    /// Active topology name from the latest `topology_round` event.
    topology: Option<String>,
    /// Per-worker (round, neighbor count) from its latest `topology_round`.
    neighbors: BTreeMap<usize, (u64, u64)>,
}

fn num(fields: &Json, key: &str) -> f64 {
    fields.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn flag(fields: &Json, key: &str) -> bool {
    matches!(fields.get(key), Some(Json::Bool(true)))
}

impl State {
    /// Fold one JSONL line in. Unparseable lines are ignored, not errors.
    fn ingest(&mut self, line: &str) {
        let Ok(v) = json::parse(line) else { return };
        let Some(kind) = v.get("kind").and_then(|k| k.as_str()) else {
            return;
        };
        let worker = v.get("worker").and_then(|w| w.as_u64()).unwrap_or(0) as usize;
        let Some(fields) = v.get("fields") else {
            return;
        };
        self.records += 1;
        match kind {
            "worker_health" => {
                let row = self.workers.entry(worker).or_default();
                // Keep the newest round (tail order is arrival order, but
                // multi-worker streams interleave freely).
                if (num(fields, "round") as u64) < row.round {
                    return;
                }
                *row = WorkerRow {
                    round: num(fields, "round") as u64,
                    iter: num(fields, "iter") as u64,
                    rate: num(fields, "rate"),
                    gbs_round: num(fields, "gbs_round") as u64,
                    deferred: num(fields, "deferred") as u64,
                    sendq: num(fields, "sendq") as u64,
                    scratch_hw: num(fields, "scratch_hw") as u64,
                };
            }
            "health_silence" => {
                self.silent.insert(num(fields, "peer") as usize);
            }
            "peer_departed" => {
                self.departed.insert(num(fields, "peer") as usize);
            }
            "cluster_health" => {
                self.cluster.insert(
                    worker,
                    ClusterRow {
                        iterations: num(fields, "iterations") as u64,
                        rate: num(fields, "rate"),
                        score: num(fields, "score"),
                        silent: flag(fields, "silent"),
                        departed: flag(fields, "departed"),
                    },
                );
                self.straggler = Some(num(fields, "straggler") as usize);
            }
            "topology_round" => {
                if let Some(name) = fields.get("topology").and_then(|t| t.as_str()) {
                    self.topology = Some(name.to_string());
                }
                let round = num(fields, "round") as u64;
                let nbrs = num(fields, "neighbors") as u64;
                let entry = self.neighbors.entry(worker).or_insert((round, nbrs));
                if round >= entry.0 {
                    *entry = (round, nbrs);
                }
            }
            "frame_latency" => {
                self.links.insert(
                    (worker, num(fields, "peer") as usize),
                    LinkRow {
                        frames: num(fields, "frames") as u64,
                        depth_hw: num(fields, "depth_hw") as u64,
                        queue_p50_us: num(fields, "queue_p50_us"),
                        queue_p99_us: num(fields, "queue_p99_us"),
                        write_p99_us: num(fields, "write_p99_us"),
                        read_p99_us: num(fields, "read_p99_us"),
                        apply_p99_us: num(fields, "apply_p99_us"),
                    },
                );
            }
            _ => {}
        }
    }

    fn status(&self, w: usize) -> String {
        let mut tags = Vec::new();
        if self.straggler == Some(w) {
            tags.push("STRAGGLER");
        }
        if self.silent.contains(&w) || self.cluster.get(&w).is_some_and(|c| c.silent) {
            tags.push("SILENT");
        }
        if self.departed.contains(&w) || self.cluster.get(&w).is_some_and(|c| c.departed) {
            tags.push("DEPARTED");
        }
        if tags.is_empty() {
            "ok".to_string()
        } else {
            tags.join(" ")
        }
    }

    /// Render the dashboard. Pure — the unit tests and `--once` snapshot
    /// mode exercise exactly what the refresh loop prints.
    fn render(&self) -> String {
        let mut out = format!("dlion-top — {} records\n", self.records);
        if let Some(t) = &self.topology {
            out.push_str(&format!("topology: {t}\n"));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<6} {:>6} {:>7} {:>11} {:>5} {:>5} {:>6} {:>6} {:>10}  {}\n",
            "WORKER",
            "ROUND",
            "ITER",
            "RATE(sps)",
            "GBS",
            "NBRS",
            "DEFER",
            "SENDQ",
            "SCRATCH",
            "STATUS"
        ));
        let ids: BTreeSet<usize> = self
            .workers
            .keys()
            .chain(self.cluster.keys())
            .chain(self.neighbors.keys())
            .chain(self.silent.iter())
            .chain(self.departed.iter())
            .copied()
            .collect();
        for w in &ids {
            let row = self.workers.get(w).cloned().unwrap_or_default();
            let nbrs = self
                .neighbors
                .get(w)
                .map_or("-".to_string(), |(_, n)| n.to_string());
            out.push_str(&format!(
                "w{:<5} {:>6} {:>7} {:>11.1} {:>5} {:>5} {:>6} {:>6} {:>10}  {}\n",
                w,
                row.round,
                row.iter,
                row.rate,
                row.gbs_round,
                nbrs,
                row.deferred,
                row.sendq,
                row.scratch_hw,
                self.status(*w)
            ));
        }
        if let Some(s) = self.straggler {
            let score = self.cluster.get(&s).map_or(0.0, |c| c.score);
            out.push_str(&format!("\ncluster: straggler w{s} (score {score:.2})\n"));
            for (w, c) in &self.cluster {
                out.push_str(&format!(
                    "  w{w}: {} iters at {:.2}/s, score {:.2}\n",
                    c.iterations, c.rate, c.score
                ));
            }
        }
        if !self.links.is_empty() {
            out.push_str(&format!(
                "\n{:<9} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "LINK", "FRAMES", "DEPTH", "Q_P50us", "Q_P99us", "WR_P99us", "RD_P99us", "AP_P99us"
            ));
            for ((w, p), l) in &self.links {
                out.push_str(&format!(
                    "w{w}->w{p:<4} {:>7} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}\n",
                    l.frames,
                    l.depth_hw,
                    l.queue_p50_us,
                    l.queue_p99_us,
                    l.write_p99_us,
                    l.read_p99_us,
                    l.apply_p99_us
                ));
            }
        }
        out
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut once = false;
    let mut interval = 1.0f64;
    let usage = || -> ! {
        eprintln!("usage: dlion-top <trace.jsonl> [--once] [--interval S]");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) if s > 0.0 => interval = s,
                _ => usage(),
            },
            _ if path.is_none() && !arg.starts_with("--") => path = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };

    let mut state = State::default();
    let mut offset = 0usize;
    loop {
        // Re-read from the last offset: works on both finished files and
        // ones still being appended to by a live run.
        match std::fs::read(&path) {
            Ok(bytes) if bytes.len() > offset => {
                // Only consume complete lines; a torn tail waits a tick.
                let end = bytes[offset..]
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map(|p| offset + p + 1)
                    .unwrap_or(offset);
                if let Ok(chunk) = std::str::from_utf8(&bytes[offset..end]) {
                    for line in chunk.lines() {
                        state.ingest(line);
                    }
                    offset = end;
                }
            }
            Ok(_) => {}
            Err(e) => {
                if once {
                    eprintln!("dlion-top: cannot read {path}: {e}");
                    std::process::exit(1);
                }
                // Tail mode: the file may simply not exist yet.
            }
        }
        if once {
            print!("{}", state.render());
            return;
        }
        // ANSI clear + home, like `top`.
        print!("\x1b[2J\x1b[H{}", state.render());
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(worker: usize, kind: &str, fields: &str) -> String {
        format!(
            "{{\"wall_ns\":1,\"vtime\":0.4,\"seq\":0,\"system\":\"DLion\",\"env\":\"live/3w\",\
             \"seed\":1,\"worker\":{worker},\"kind\":\"{kind}\",\"fields\":{fields}}}"
        )
    }

    #[test]
    fn renders_worker_rows_silence_and_straggler() {
        let mut s = State::default();
        s.ingest(&line(
            0,
            "worker_health",
            r#"{"round":2,"iter":8,"rate":612.5,"gbs_round":1,"deferred":0,"sendq":2,"scratch_hw":1024}"#,
        ));
        // A stale round must not clobber the newer report.
        s.ingest(&line(
            0,
            "worker_health",
            r#"{"round":1,"iter":4,"rate":100.0,"gbs_round":0,"deferred":0,"sendq":0,"scratch_hw":0}"#,
        ));
        s.ingest(&line(0, "health_silence", r#"{"peer":1,"iter":9}"#));
        s.ingest(&line(
            0,
            "peer_departed",
            r#"{"peer":1,"completed":9,"iter":9}"#,
        ));
        s.ingest(&line(
            2,
            "cluster_health",
            r#"{"iterations":24,"rounds":6,"rate":6.67,"score":3.0,"silent":false,"departed":false,"straggler":2}"#,
        ));
        s.ingest(&line(
            0,
            "frame_latency",
            r#"{"peer":2,"frames":40,"depth_hw":3,"queue_p50_us":10.0,"queue_p99_us":80.0,"write_p50_us":5.0,"write_p99_us":50.0,"read_p99_us":30.0,"apply_p99_us":20.0}"#,
        ));
        // Unknown kinds and garbage are counted / skipped, never fatal.
        s.ingest(&line(0, "iter_done", r#"{"loss":1.5}"#));
        s.ingest("not json at all");

        let out = s.render();
        assert!(out.contains("612.5"), "{out}");
        assert_eq!(s.workers[&0].round, 2);
        assert!(out.contains("straggler w2 (score 3.00)"), "{out}");
        assert!(out.contains("SILENT"), "{out}");
        assert!(out.contains("DEPARTED"), "{out}");
        assert!(out.contains("STRAGGLER"), "{out}");
        assert!(out.contains("w0->w2"), "{out}");
        assert!(out.contains("7 records"), "{out}");
    }

    #[test]
    fn topology_rounds_show_name_and_neighbor_counts() {
        let mut s = State::default();
        s.ingest(&line(
            0,
            "topology_round",
            r#"{"round":0,"topology":"kregular:2","neighbors":2,"links":6}"#,
        ));
        s.ingest(&line(
            1,
            "topology_round",
            r#"{"round":0,"topology":"kregular:2","neighbors":2,"links":6}"#,
        ));
        // A newer round replaces the count; a stale one must not.
        s.ingest(&line(
            1,
            "topology_round",
            r#"{"round":3,"topology":"kregular:2","neighbors":1,"links":6}"#,
        ));
        s.ingest(&line(
            1,
            "topology_round",
            r#"{"round":2,"topology":"kregular:2","neighbors":4,"links":6}"#,
        ));
        let out = s.render();
        assert!(out.contains("topology: kregular:2"), "{out}");
        assert!(out.contains("NBRS"), "{out}");
        assert_eq!(s.neighbors[&0], (0, 2));
        assert_eq!(s.neighbors[&1], (3, 1));
    }

    #[test]
    fn empty_stream_renders_header_only() {
        let s = State::default();
        let out = s.render();
        assert!(out.contains("0 records"), "{out}");
        assert!(out.contains("WORKER"), "{out}");
        assert!(!out.contains("straggler"), "{out}");
    }
}
