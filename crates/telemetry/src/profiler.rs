//! Wall-clock per-phase profiler.
//!
//! A fixed set of [`Phase`]s covers where simulator wall time goes; RAII
//! [`ScopeGuard`]s accumulate elapsed nanoseconds into global atomic slots.
//! Disabled (the default), [`profile_scope`] is one relaxed atomic load and
//! no clock read, so instrumented hot paths (every GEMM call) stay free.
//!
//! Phases are *self-inclusive*: `Gemm` time is also inside the enclosing
//! `Forward`/`Backward` scope, so columns don't sum to 100% of wall time —
//! the table reports each phase against the whole process runtime instead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Where simulator wall-clock time can go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Forward pass of a training step.
    Forward,
    /// Backward pass of a training step.
    Backward,
    /// Matrix-multiply kernels (nested inside Forward/Backward/Eval).
    Gemm,
    /// Building partial-gradient messages (Max N selection, sparsification).
    Serialize,
    /// Event-queue pop + dispatch bookkeeping.
    EventQueue,
    /// Periodic cluster-wide accuracy evaluation.
    Eval,
}

pub const PHASE_COUNT: usize = 6;

const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "forward",
    "backward",
    "gemm",
    "serialize",
    "event_queue",
    "eval",
];

impl Phase {
    pub fn name(self) -> &'static str {
        PHASE_NAMES[self as usize]
    }
}

struct Slot {
    ns: AtomicU64,
    calls: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            ns: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        }
    }
}

static SLOTS: [Slot; PHASE_COUNT] = [
    Slot::new(),
    Slot::new(),
    Slot::new(),
    Slot::new(),
    Slot::new(),
    Slot::new(),
];

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the profiler on or off (the `--profile` flag).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero all accumulated phase totals.
pub fn reset() {
    for s in &SLOTS {
        s.ns.store(0, Ordering::Relaxed);
        s.calls.store(0, Ordering::Relaxed);
    }
}

/// RAII guard: accumulates the scope's elapsed wall time into its phase.
pub struct ScopeGuard {
    phase: Phase,
    start: Option<Instant>,
}

/// Enter a profiled scope. No-op (no clock read) when profiling is off.
#[inline]
pub fn profile_scope(phase: Phase) -> ScopeGuard {
    ScopeGuard {
        phase,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let slot = &SLOTS[self.phase as usize];
            slot.ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            slot.calls.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One phase's accumulated totals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseStat {
    pub phase: &'static str,
    pub calls: u64,
    pub total_ns: u64,
}

/// Snapshot all phase totals (in [`Phase`] declaration order).
pub fn snapshot() -> Vec<PhaseStat> {
    PHASE_NAMES
        .iter()
        .zip(&SLOTS)
        .map(|(&phase, slot)| PhaseStat {
            phase,
            calls: slot.calls.load(Ordering::Relaxed),
            total_ns: slot.ns.load(Ordering::Relaxed),
        })
        .collect()
}

/// The `--profile` summary table. `wall_s` is the reference runtime the
/// percentages are computed against (pass the measured end-to-end wall
/// time).
pub fn render_table(wall_s: f64) -> String {
    let stats = snapshot();
    let mut s = String::from("phase profile (wall-clock, self-inclusive):\n");
    s.push_str(&format!(
        "  {:<12} {:>12} {:>14} {:>12} {:>8}\n",
        "phase", "calls", "total_ms", "us/call", "% wall"
    ));
    for st in &stats {
        let ms = st.total_ns as f64 / 1e6;
        let per = if st.calls > 0 {
            st.total_ns as f64 / 1e3 / st.calls as f64
        } else {
            0.0
        };
        let pct = if wall_s > 0.0 {
            100.0 * (st.total_ns as f64 / 1e9) / wall_s
        } else {
            0.0
        };
        s.push_str(&format!(
            "  {:<12} {:>12} {:>14.2} {:>12.2} {:>7.1}%\n",
            st.phase, st.calls, ms, per, pct
        ));
    }
    s
}

/// JSON array of phase totals (for `BENCH_telemetry.json`-style dumps).
pub fn to_json() -> String {
    let mut s = String::from("[");
    for (i, st) in snapshot().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"phase\":\"{}\",\"calls\":{},\"total_ns\":{}}}",
            st.phase, st.calls, st.total_ns
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global; keep all assertions in one test.
    #[test]
    fn scopes_accumulate_only_when_enabled() {
        reset();
        {
            let _g = profile_scope(Phase::Gemm);
            std::hint::black_box(0u64);
        }
        let off = snapshot();
        assert_eq!(off[Phase::Gemm as usize].calls, 0, "off => no accounting");

        enable(true);
        for _ in 0..3 {
            let _g = profile_scope(Phase::Forward);
            std::hint::black_box(vec![0u8; 1024]);
        }
        {
            let _outer = profile_scope(Phase::Backward);
            let _inner = profile_scope(Phase::Gemm); // nesting is fine
        }
        enable(false);

        let stats = snapshot();
        let by_name = |n: &str| *stats.iter().find(|s| s.phase == n).unwrap();
        assert_eq!(by_name("forward").calls, 3);
        assert_eq!(by_name("backward").calls, 1);
        assert_eq!(by_name("gemm").calls, 1);
        assert_eq!(by_name("serialize").calls, 0);

        let table = render_table(1.0);
        for name in PHASE_NAMES {
            assert!(table.contains(name), "{name} missing from table");
        }
        let j = to_json();
        let v = crate::json::parse(&j).unwrap();
        match v {
            crate::json::Json::Arr(items) => assert_eq!(items.len(), PHASE_COUNT),
            other => panic!("expected array, got {other:?}"),
        }

        reset();
        assert_eq!(snapshot()[Phase::Forward as usize].calls, 0);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Forward.name(), "forward");
        assert_eq!(Phase::EventQueue.name(), "event_queue");
        assert_eq!(Phase::Eval.name(), "eval");
    }
}
