//! Dense row-major `f32` tensors.
//!
//! The tensor type is deliberately simple: owned contiguous storage, eager
//! operations, no views or broadcasting machinery beyond what the NN stack
//! needs. Heavy kernels live in [`crate::ops`].

use crate::deterministic_sum;
use crate::rng::DetRng;
use crate::shape::Shape;
use std::sync::Arc;

/// A dense, row-major tensor of `f32` with copy-on-write storage.
///
/// Cloning a tensor shares its buffer (a refcount bump); the clone copies
/// lazily on first mutation. This is what lets a 1000-worker simulated
/// cluster start from one shared weight snapshot instead of n materialized
/// copies, and what makes per-peer dense gradient fan-out (k messages per
/// iteration, each "cloning" the gradient tensors) allocation-free until a
/// wire format actually rewrites the values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor({}, {} elems)", self.shape, self.data.len())
    }
}

impl Tensor {
    // ---------- constructors ----------

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![0.0; n]),
        }
    }

    /// Tensor filled with `v`.
    pub fn full(shape: impl Into<Shape>, v: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![v; n]),
        }
    }

    /// Build from existing data. Panics if lengths disagree.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} vs data len {}",
            data.len()
        );
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// Build by calling `f` on each flat index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(&mut f).collect();
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// I.i.d. normal entries with the given std (mean 0).
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel())
            .map(|_| rng.normal_ms(0.0, std as f64) as f32)
            .collect();
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// He (Kaiming) initialization for a layer with `fan_in` inputs.
    pub fn he_init(shape: impl Into<Shape>, fan_in: usize, rng: &mut DetRng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::randn(shape, std, rng)
    }

    // ---------- accessors ----------

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the buffer; copies a shared buffer first
    /// (copy-on-write), so the returned slice is uniquely owned.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// True if this tensor currently shares its buffer with another clone
    /// (diagnostics: a freshly-built cluster should share every weight
    /// buffer; post-training weights should not).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    pub fn into_data(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Element by multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element by multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let o = self.shape.offset(idx);
        &mut Arc::make_mut(&mut self.data)[o]
    }

    // ---------- shape ops ----------

    /// Reshape in place (same numel). Returns self for chaining.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert!(
            self.shape.same_numel(&shape),
            "reshape {} -> {} numel mismatch",
            self.shape,
            shape
        );
        self.shape = shape;
        self
    }

    /// Copy rows `rows` (first-axis indices) into a new tensor.
    /// Works for any rank >= 1; the first axis is the batch axis.
    pub fn gather_rows(&self, rows: &[usize]) -> Tensor {
        assert!(self.shape.rank() >= 1);
        let row_len = self.numel() / self.shape.dim(0);
        let mut dims = self.shape.dims().to_vec();
        dims[0] = rows.len();
        let mut out = Vec::with_capacity(rows.len() * row_len);
        for &r in rows {
            assert!(r < self.shape.dim(0), "row {r} out of bounds");
            out.extend_from_slice(&self.data[r * row_len..(r + 1) * row_len]);
        }
        Tensor::from_vec(dims, out)
    }

    // ---------- elementwise ----------

    /// `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in Arc::make_mut(&mut self.data).iter_mut().zip(&*other.data) {
            *a += b;
        }
    }

    /// `self -= other` (same shape).
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "sub_assign shape mismatch");
        for (a, b) in Arc::make_mut(&mut self.data).iter_mut().zip(&*other.data) {
            *a -= b;
        }
    }

    /// `self += alpha * other` (same shape) — the workhorse of every SGD
    /// update and gradient merge in the system.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in Arc::make_mut(&mut self.data).iter_mut().zip(&*other.data) {
            *a += alpha * b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in Arc::make_mut(&mut self.data).iter_mut() {
            *a *= s;
        }
    }

    /// Set all entries to zero.
    pub fn fill_zero(&mut self) {
        Arc::make_mut(&mut self.data)
            .iter_mut()
            .for_each(|x| *x = 0.0);
    }

    /// New tensor `f(x)` applied elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
        }
    }

    // ---------- reductions ----------

    /// Sum of all entries (deterministic parallel reduction).
    pub fn sum(&self) -> f32 {
        deterministic_sum(&self.data)
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm.
    pub fn sq_l2(&self) -> f32 {
        let sq: Vec<f32> = self.data.iter().map(|&x| x * x).collect();
        deterministic_sum(&sq)
    }

    /// L2 norm.
    pub fn l2(&self) -> f32 {
        self.sq_l2().sqrt()
    }

    /// Index of the max entry in a rank-1 tensor or a row of a rank-2 tensor.
    pub fn argmax_row(&self, row: usize) -> usize {
        assert!(self.shape.rank() == 2, "argmax_row needs rank-2");
        let c = self.shape.dim(1);
        let slice = &self.data[row * c..(row + 1) * c];
        slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Clip every entry into `[-c, c]` (gradient clipping).
    pub fn clip_inplace(&mut self, c: f32) {
        assert!(c >= 0.0);
        for x in Arc::make_mut(&mut self.data).iter_mut() {
            *x = x.clamp(-c, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(Shape::d1(4), 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
        let v = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.at(&[1, 0]), 3.0);
        let g = Tensor::from_fn(Shape::d1(3), |i| i as f32);
        assert_eq!(g.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_len_mismatch_panics() {
        Tensor::from_vec(Shape::d2(2, 2), vec![1.0]);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = DetRng::seed_from_u64(1);
        let t = Tensor::randn(Shape::d1(20_000), 0.5, &mut rng);
        let mean = t.mean();
        assert!(mean.abs() < 0.02, "mean {mean}");
        let var = t.sq_l2() / t.numel() as f32;
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn he_init_std() {
        let mut rng = DetRng::seed_from_u64(2);
        let t = Tensor::he_init(Shape::d1(50_000), 8, &mut rng);
        let var = t.sq_l2() / t.numel() as f32;
        assert!(
            (var - 0.25).abs() < 0.02,
            "He var should be 2/8 = 0.25, got {var}"
        );
    }

    #[test]
    fn axpy_and_arith() {
        let mut a = Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(Shape::d1(3), vec![10.0, 20.0, 30.0]);
        a.axpy(0.1, &b);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[-8.0, -16.0, -24.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(Shape::d1(4), vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.sq_l2(), 30.0);
        assert!((t.l2() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_row_works() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.1]);
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.argmax_row(1), 0);
    }

    #[test]
    fn gather_rows_copies_batch_items() {
        let t = Tensor::from_fn(Shape::d4(4, 1, 2, 2), |i| i as f32);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.shape().dims(), &[2, 1, 2, 2]);
        assert_eq!(g.data()[0..4], [8.0, 9.0, 10.0, 11.0]);
        assert_eq!(g.data()[4..8], [0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(Shape::d2(2, 6), |i| i as f32);
        let r = t.clone().reshape(Shape::d4(2, 3, 2, 1));
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape().dims(), &[2, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "numel mismatch")]
    fn reshape_bad_numel_panics() {
        let _ = Tensor::zeros(Shape::d1(5)).reshape(Shape::d2(2, 3));
    }

    #[test]
    fn clip_and_non_finite() {
        let mut t = Tensor::from_vec(Shape::d1(3), vec![-5.0, 0.5, 9.0]);
        t.clip_inplace(1.0);
        assert_eq!(t.data(), &[-1.0, 0.5, 1.0]);
        assert!(!t.has_non_finite());
        let bad = Tensor::from_vec(Shape::d1(2), vec![f32::NAN, 1.0]);
        assert!(bad.has_non_finite());
    }

    #[test]
    fn map_elementwise() {
        let t = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.0, 2.0]);
        let r = t.map(|x| x.max(0.0));
        assert_eq!(r.data(), &[0.0, 0.0, 2.0]);
    }
}
