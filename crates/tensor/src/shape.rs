//! Tensor shapes.
//!
//! Shapes are small (`rank <= 4` in practice: NCHW activations, FCKK conv
//! weights, MxN matrices), so a plain `Vec<usize>` with helper methods is
//! the simplest correct representation.

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension extents.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// A scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(vec![])
    }

    /// A rank-1 shape.
    pub fn d1(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A rank-2 shape (rows, cols).
    pub fn d2(r: usize, c: usize) -> Self {
        Shape(vec![r, c])
    }

    /// A rank-4 shape (e.g. NCHW).
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The dims as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat row-major offset of a multi-index. Panics on rank mismatch and
    /// debug-asserts bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            debug_assert!(idx[i] < self.0[i], "index out of bounds");
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// True if both shapes have the same number of elements (reshape-compatible).
    pub fn same_numel(&self, other: &Shape) -> bool {
        self.numel() == other.numel()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.numel(), 120);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::d1(7).numel(), 7);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        assert_eq!(Shape::d2(3, 4).strides(), vec![4, 1]);
        assert_eq!(Shape::d1(9).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.offset(&[0, 0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3, 4]), 60 + 40 + 15 + 4);
        assert_eq!(s.offset(&[1, 0, 0, 1]), 61);
    }

    #[test]
    #[should_panic(expected = "index rank mismatch")]
    fn offset_rank_mismatch_panics() {
        Shape::d2(2, 2).offset(&[1]);
    }

    #[test]
    fn same_numel_for_reshape() {
        assert!(Shape::d2(6, 4).same_numel(&Shape::d4(2, 3, 2, 2)));
        assert!(!Shape::d2(6, 4).same_numel(&Shape::d1(23)));
    }

    #[test]
    fn display_and_debug() {
        let s = Shape::d2(2, 3);
        assert_eq!(format!("{s}"), "[2, 3]");
        assert_eq!(format!("{s:?}"), "Shape[2, 3]");
    }
}
