//! Sparse gradient vectors and the *Max N* selection primitive.
//!
//! DLion's per-link prioritized gradient exchange (§3.3 of the paper) sends
//! only the statistically significant entries of each weight variable's
//! gradient. The *Max N* algorithm selects entries whose absolute value is
//! within `N%` of the per-variable maximum absolute value:
//!
//! * `N = 100` ⇒ threshold `0·max` ⇒ **all** entries are exchanged
//!   (equivalent to dense exchange, as the paper states),
//! * `N = 1`  ⇒ threshold `0.99·max` ⇒ only near-maximal entries.
//!
//! The transmission-speed assurance module inverts a per-link byte budget
//! into the largest admissible `N` ([`n_for_budget`]).

use crate::tensor::Tensor;

/// Bytes on the wire per sparse entry: a `u32` index + an `f32` value.
pub const SPARSE_ENTRY_BYTES: usize = 8;
/// Bytes on the wire per dense entry: an `f32` value.
pub const DENSE_ENTRY_BYTES: usize = 4;

/// A sparse view of a gradient for one weight variable.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec {
    /// Flat indices into the dense tensor, strictly increasing.
    pub indices: Vec<u32>,
    /// Values at those indices.
    pub values: Vec<f32>,
    /// Length of the dense tensor this was taken from.
    pub dense_len: usize,
}

impl SparseVec {
    /// Empty sparse vector over a dense length.
    pub fn empty(dense_len: usize) -> Self {
        SparseVec {
            indices: vec![],
            values: vec![],
            dense_len,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of dense entries represented.
    pub fn density(&self) -> f64 {
        if self.dense_len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.dense_len as f64
        }
    }

    /// Wire size in bytes (index + value per entry).
    pub fn wire_bytes(&self) -> usize {
        self.nnz() * SPARSE_ENTRY_BYTES
    }

    /// Select all entries of `dense` with `|v| >= thr` (thr >= 0).
    pub fn from_dense_threshold(dense: &[f32], thr: f32) -> Self {
        debug_assert!(thr >= 0.0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v.abs() >= thr && v != 0.0 {
                indices.push(i as u32);
                values.push(v);
            }
        }
        SparseVec {
            indices,
            values,
            dense_len: dense.len(),
        }
    }

    /// The full dense vector as a (degenerate) sparse vector; zero entries
    /// are kept so the wire size reflects a dense transfer.
    pub fn from_dense_full(dense: &[f32]) -> Self {
        SparseVec {
            indices: (0..dense.len() as u32).collect(),
            values: dense.to_vec(),
            dense_len: dense.len(),
        }
    }

    /// Scatter-add `scale * self` into `out` (len must match `dense_len`).
    pub fn add_into(&self, out: &mut [f32], scale: f32) {
        assert_eq!(out.len(), self.dense_len, "dense length mismatch");
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] += scale * v;
        }
    }

    /// Materialize as a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.dense_len];
        self.add_into(&mut out, 1.0);
        out
    }
}

/// Max N selection over one dense gradient (§3.3).
///
/// Selects entries with `|g| >= (1 - n_percent/100) * max|g|`. `n_percent`
/// is clamped into `(0, 100]`; at 100 the entire gradient is selected
/// (dense-equivalent exchange).
pub fn max_n_select(dense: &[f32], n_percent: f64) -> SparseVec {
    let n = n_percent.clamp(f64::MIN_POSITIVE, 100.0);
    if n >= 100.0 {
        return SparseVec::from_dense_full(dense);
    }
    let max = dense.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max == 0.0 {
        return SparseVec::empty(dense.len());
    }
    let thr = ((1.0 - n / 100.0) * max as f64) as f32;
    SparseVec::from_dense_threshold(dense, thr)
}

/// The `k`-th largest absolute value of `dense` (1-based `k`), or 0.0 for
/// `k == 0` / empty input. Used to convert a byte budget into a threshold.
pub fn kth_largest_abs(dense: &[f32], k: usize) -> f32 {
    if k == 0 || dense.is_empty() {
        return 0.0;
    }
    let k = k.min(dense.len());
    let mut abs: Vec<f32> = dense.iter().map(|x| x.abs()).collect();
    // k-th largest == (len - k)-th smallest (0-based).
    let pos = abs.len() - k;
    abs.select_nth_unstable_by(pos, |a, b| {
        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
    });
    abs[pos]
}

/// Transmission-speed assurance (§3.3): find the largest `N ∈ [min_n, 100]`
/// such that Max N selection of `dense` fits within `max_entries` entries.
///
/// Returns `(n, selection)`. The paper's module computes the per-link entry
/// budget as `BW_net_j / Iter_com_i`; this function performs the inversion
/// from budget to `N` exactly (via the k-th largest magnitude) rather than
/// by trial and error.
pub fn n_for_budget(dense: &[f32], max_entries: usize, min_n: f64) -> (f64, SparseVec) {
    let min_n = min_n.clamp(f64::MIN_POSITIVE, 100.0);
    let max = dense.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max == 0.0 || dense.is_empty() {
        return (min_n, SparseVec::empty(dense.len()));
    }
    if max_entries >= dense.len() {
        // Whole gradient fits.
        return (100.0, SparseVec::from_dense_full(dense));
    }
    if max_entries == 0 {
        // Even at the minimum N we must send *something* to guarantee
        // convergence; fall through with a budget of 1 entry.
        let sel = max_n_select(dense, min_n);
        return (min_n, clamp_entries(sel, 1));
    }
    let thr = kth_largest_abs(dense, max_entries);
    // N that produces exactly this threshold.
    let n = ((1.0 - (thr / max) as f64) * 100.0).clamp(min_n, 100.0);
    let sel = max_n_select(dense, n);
    // Ties at the threshold can overshoot the budget; trim lowest-magnitude
    // entries to honor the hard byte budget.
    (n, clamp_entries(sel, max_entries))
}

/// Keep only the `max_entries` largest-magnitude entries of `sel`
/// (preserving index order).
fn clamp_entries(sel: SparseVec, max_entries: usize) -> SparseVec {
    if sel.nnz() <= max_entries {
        return sel;
    }
    let mut order: Vec<usize> = (0..sel.nnz()).collect();
    order.sort_by(|&a, &b| {
        sel.values[b]
            .abs()
            .partial_cmp(&sel.values[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(max_entries);
    order.sort_unstable();
    let indices = order.iter().map(|&i| sel.indices[i]).collect();
    let values = order.iter().map(|&i| sel.values[i]).collect();
    SparseVec {
        indices,
        values,
        dense_len: sel.dense_len,
    }
}

/// Max N applied per weight variable of a whole model gradient, as the paper
/// specifies ("Max N is applied per weight variable").
pub fn max_n_select_model(grads: &[Tensor], n_percent: f64) -> Vec<SparseVec> {
    grads
        .iter()
        .map(|g| max_n_select(g.data(), n_percent))
        .collect()
}

/// Total wire bytes for a set of per-variable sparse gradients.
pub fn total_wire_bytes(sparse: &[SparseVec]) -> usize {
    sparse.iter().map(|s| s.wire_bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense() -> Vec<f32> {
        vec![0.05, -1.0, 0.5, 0.0, -0.95, 0.2, 0.91, -0.4]
    }

    #[test]
    fn max_n_100_selects_everything_including_zeros() {
        let s = max_n_select(&dense(), 100.0);
        assert_eq!(s.nnz(), 8, "N=100 must be dense-equivalent");
        assert_eq!(s.to_dense(), dense());
    }

    #[test]
    fn max_n_small_selects_near_max_only() {
        // N = 10 -> threshold 0.9 * 1.0 = 0.9 -> {-1.0, -0.95, 0.91}
        let s = max_n_select(&dense(), 10.0);
        assert_eq!(s.indices, vec![1, 4, 6]);
        assert_eq!(s.values, vec![-1.0, -0.95, 0.91]);
    }

    #[test]
    fn max_n_monotone_in_n() {
        let d = dense();
        let mut prev = 0;
        for n in [1.0, 5.0, 10.0, 50.0, 80.0, 100.0] {
            let s = max_n_select(&d, n);
            assert!(s.nnz() >= prev, "selection must grow with N (n={n})");
            prev = s.nnz();
        }
    }

    #[test]
    fn max_n_zero_gradient() {
        let s = max_n_select(&[0.0; 5], 50.0);
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    fn kth_largest_abs_basic() {
        let d = dense();
        assert_eq!(kth_largest_abs(&d, 1), 1.0);
        assert_eq!(kth_largest_abs(&d, 2), 0.95);
        assert_eq!(kth_largest_abs(&d, 3), 0.91);
        assert_eq!(kth_largest_abs(&d, 100), 0.0); // clamped to len, min |v| is 0.0
        assert_eq!(kth_largest_abs(&d, 0), 0.0);
        assert_eq!(kth_largest_abs(&[], 3), 0.0);
    }

    #[test]
    fn budget_inversion_respects_budget_and_min_n() {
        let d = dense();
        for budget in 0..=8 {
            let (n, sel) = n_for_budget(&d, budget, 0.85);
            assert!(
                sel.nnz() <= budget.max(1),
                "budget {budget} violated: {}",
                sel.nnz()
            );
            assert!((0.85..=100.0).contains(&n), "N out of range: {n}");
        }
        let (n, sel) = n_for_budget(&d, 8, 0.85);
        assert_eq!(n, 100.0);
        assert_eq!(sel.nnz(), 8);
    }

    #[test]
    fn budget_selects_largest_magnitudes() {
        let d = dense();
        let (_, sel) = n_for_budget(&d, 3, 0.85);
        assert_eq!(sel.indices, vec![1, 4, 6], "must pick top-3 magnitudes");
    }

    #[test]
    fn budget_zero_still_sends_one_entry() {
        let d = dense();
        let (_, sel) = n_for_budget(&d, 0, 0.85);
        assert!(sel.nnz() >= 1, "convergence guarantee: never send nothing");
    }

    #[test]
    fn scatter_add_and_roundtrip() {
        let d = dense();
        let s = max_n_select(&d, 100.0);
        let mut out = vec![1.0; 8];
        s.add_into(&mut out, 2.0);
        for i in 0..8 {
            assert!((out[i] - (1.0 + 2.0 * d[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn wire_bytes_accounting() {
        let s = max_n_select(&dense(), 10.0);
        assert_eq!(s.wire_bytes(), 3 * SPARSE_ENTRY_BYTES);
        let model = vec![
            Tensor::from_vec(crate::Shape::d1(8), dense()),
            Tensor::from_vec(crate::Shape::d1(8), dense()),
        ];
        let sel = max_n_select_model(&model, 10.0);
        assert_eq!(total_wire_bytes(&sel), 6 * SPARSE_ENTRY_BYTES);
    }

    #[test]
    fn indices_strictly_increasing() {
        let s = max_n_select(&dense(), 60.0);
        for w in s.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
        let (_, s2) = n_for_budget(&dense(), 5, 0.85);
        for w in s2.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn density_and_empty() {
        let e = SparseVec::empty(10);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.density(), 0.0);
        let s = max_n_select(&dense(), 10.0);
        assert!((s.density() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(SparseVec::empty(0).density(), 0.0);
    }
}
