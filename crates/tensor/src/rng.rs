//! Deterministic random number generation.
//!
//! All stochastic pieces of the simulation (weight init, minibatch sampling,
//! synthetic data, bandwidth jitter) draw from [`DetRng`], a self-contained
//! xoshiro256++ generator (seeded through SplitMix64) plus the distributions
//! the workloads need. A fresh `DetRng` from the same seed always produces
//! the same stream on every platform, which keeps whole cluster simulations
//! bit-reproducible — and the implementation has no external dependencies,
//! so the workspace builds with no registry access.

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic RNG used throughout the workspace (xoshiro256++).
#[derive(Clone)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second sample from Box–Muller.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            s,
            spare_normal: None,
        }
    }

    /// Derive a child RNG with a domain-separated seed; used to give each
    /// simulated worker an independent, reproducible stream.
    pub fn derive(&mut self, stream: u64) -> DetRng {
        let s = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from_u64(s)
    }

    /// Raw u64, for seeding sub-components. (xoshiro256++ step.)
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's debiased multiply-shift.
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            // Rejection zone for exact uniformity over [0, n).
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Standard normal via Box–Muller (no external distribution crate).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need to be final.
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn index_is_unbiased_over_small_range() {
        // Lemire rejection must make all residues equally likely; check a
        // range that does not divide 2^64 evenly.
        let mut rng = DetRng::seed_from_u64(77);
        let n = 6;
        let mut counts = [0usize; 6];
        let draws = 60_000;
        for _ in 0..draws {
            counts[rng.index(n)] += 1;
        }
        let expected = draws / n;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = DetRng::seed_from_u64(42);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_ms_scales() {
        let mut rng = DetRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal_ms(5.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::seed_from_u64(9);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = DetRng::seed_from_u64(11);
        let s = rng.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_all_indices_is_permutation() {
        let mut rng = DetRng::seed_from_u64(12);
        let mut s = rng.sample_indices(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn derive_gives_independent_reproducible_streams() {
        let mut root1 = DetRng::seed_from_u64(100);
        let mut root2 = DetRng::seed_from_u64(100);
        let mut c1 = root1.derive(5);
        let mut c2 = root2.derive(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut root3 = DetRng::seed_from_u64(100);
        let mut c3 = root3.derive(6);
        let mut root4 = DetRng::seed_from_u64(100);
        let mut c4 = root4.derive(5);
        assert_ne!(c3.next_u64(), c4.next_u64());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = DetRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
