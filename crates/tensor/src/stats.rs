//! Small statistics helpers.
//!
//! The LBS controller profiles each worker by fitting a line through
//! (local batch size, iteration time) samples — [`linear_fit`] is that
//! regression. Experiment harnesses use [`mean`]/[`std_dev`]/[`ci95`] to
//! report the paper-style "average of three runs with 95 % confidence
//! interval" rows.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (0 for < 2 samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample (Bessel-corrected) standard deviation (0 for < 2 samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the normal-approximation 95 % confidence interval of the
/// mean (`1.96 * s / sqrt(n)`).
pub fn ci95(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Ordinary least-squares line fit: returns `(intercept, slope)` minimizing
/// `sum (y - (a + b x))^2`.
///
/// Degenerate inputs (fewer than two points, or zero x-variance) return a
/// flat line through the mean.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "linear_fit input length mismatch");
    let n = xs.len();
    if n < 2 {
        return (mean(ys), 0.0);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        sxx += dx * dx;
        sxy += dx * (ys[i] - my);
    }
    if sxx == 0.0 {
        return (my, 0.0);
    }
    let slope = sxy / sxx;
    (my - slope * mx, slope)
}

/// Coefficient of determination R² for a fitted line.
pub fn r_squared(xs: &[f64], ys: &[f64], intercept: f64, slope: f64) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let my = mean(ys);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..xs.len() {
        let pred = intercept + slope * xs[i];
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - my) * (ys[i] - my);
    }
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Linear interpolated percentile in `[0, 100]` of an unsorted sample.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn ci95_scaling() {
        let xs = [1.0, 2.0, 3.0];
        let expected = 1.96 * std_dev(&xs) / 3.0f64.sqrt();
        assert!((ci95(&xs) - expected).abs() < 1e-12);
        assert_eq!(ci95(&[5.0]), 0.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r_squared(&xs, &ys, a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_line_recovers_slope() {
        // Deterministic "noise".
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((b - 0.5).abs() < 0.01, "slope {b}");
        assert!((a - 1.0).abs() < 0.15, "intercept {a}");
        assert!(r_squared(&xs, &ys, a, b) > 0.99);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert_eq!(linear_fit(&[], &[]), (0.0, 0.0));
        assert_eq!(linear_fit(&[1.0], &[5.0]), (5.0, 0.0));
        // Zero x-variance.
        let (a, b) = linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!((a, b), (2.0, 0.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 15.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        assert_eq!(percentile(&xs, 50.0), 35.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn r_squared_flat_data() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        assert_eq!(r_squared(&xs, &ys, 4.0, 0.0), 1.0);
        assert_eq!(r_squared(&xs, &ys, 0.0, 0.0), 0.0);
    }
}
