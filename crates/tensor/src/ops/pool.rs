//! 2×2 max-pooling with stride 2 (the only pooling the paper's models use).

use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Forward max-pool. Returns `(output, argmax)` where `argmax` stores, for
/// each output element, the flat index (within the whole input tensor) of
/// the winning input element — consumed by [`maxpool2_backward`].
///
/// Odd trailing rows/columns are dropped (floor semantics), matching the
/// common framework default.
pub fn maxpool2(input: &Tensor) -> (Tensor, Vec<u32>) {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let (oh, ow) = (h / 2, w / 2);
    assert!(oh > 0 && ow > 0, "input too small to pool");
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0u32; n * c * oh * ow];
    maxpool2_into(input, &mut out, &mut arg);
    (Tensor::from_vec(Shape::d4(n, c, oh, ow), out), arg)
}

/// [`maxpool2`] into caller-owned buffers (every slot is overwritten, so
/// uninitialized scratch storage is fine).
pub fn maxpool2_into(input: &Tensor, out: &mut [f32], arg: &mut [u32]) {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let (oh, ow) = (h / 2, w / 2);
    assert!(oh > 0 && ow > 0, "input too small to pool");
    assert_eq!(out.len(), n * c * oh * ow, "maxpool2 out length");
    assert_eq!(arg.len(), n * c * oh * ow, "maxpool2 argmax length");
    let id = input.data();
    par::par_chunks2_mut(out, oh * ow, arg, oh * ow, |nc, ochunk, achunk| {
        let ibase = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = oy * 2 + dy;
                        let ix = ox * 2 + dx;
                        let idx = ibase + iy * w + ix;
                        let v = id[idx];
                        if v > best {
                            best = v;
                            best_i = idx;
                        }
                    }
                }
                ochunk[oy * ow + ox] = best;
                achunk[oy * ow + ox] = best_i as u32;
            }
        }
    });
}

/// Backward max-pool: routes each output gradient to the argmax position.
pub fn maxpool2_backward(input_shape: &Shape, dout: &Tensor, argmax: &[u32]) -> Tensor {
    let mut dinput = Tensor::zeros(input_shape.clone());
    maxpool2_backward_into(dout, argmax, dinput.data_mut());
    dinput
}

/// [`maxpool2_backward`] into a caller-owned, **pre-zeroed** buffer (the
/// scatter accumulates).
pub fn maxpool2_backward_into(dout: &Tensor, argmax: &[u32], dinput: &mut [f32]) {
    assert_eq!(dout.numel(), argmax.len(), "dout/argmax length mismatch");
    for (&a, &g) in argmax.iter().zip(dout.data()) {
        dinput[a as usize] += g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_known_values() {
        let input = Tensor::from_vec(
            Shape::d4(1, 1, 4, 4),
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
        );
        let (out, arg) = maxpool2(&input);
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 8.0, -1.0, 0.75]);
        assert_eq!(arg, vec![5, 7, 8, 15]);
    }

    #[test]
    fn pool_odd_dims_floor() {
        let input = Tensor::from_fn(Shape::d4(1, 1, 5, 5), |i| i as f32);
        let (out, _) = maxpool2(&input);
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        // Last row/col dropped; max of window (0..2, 0..2) is index 6 -> 6.0.
        assert_eq!(out.at(&[0, 0, 0, 0]), 6.0);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let input = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1.0, 9.0, 2.0, 3.0]);
        let (out, arg) = maxpool2(&input);
        assert_eq!(out.data(), &[9.0]);
        let dout = Tensor::from_vec(Shape::d4(1, 1, 1, 1), vec![5.0]);
        let din = maxpool2_backward(input.shape(), &dout, &arg);
        assert_eq!(din.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn forward_backward_gradient_check() {
        use crate::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(21);
        let input = Tensor::randn(Shape::d4(2, 3, 4, 4), 1.0, &mut rng);
        let (out, arg) = maxpool2(&input);
        // Loss = 0.5 ||out||^2, so dout = out.
        let din = maxpool2_backward(input.shape(), &out, &arg);
        // Numerical check with small eps (max is locally linear away from ties).
        let eps = 1e-3;
        let loss = |x: &Tensor| 0.5 * maxpool2(x).0.sq_l2();
        let mut xp = input.clone();
        for i in (0..input.numel()).step_by(7) {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let fp = loss(&xp);
            xp.data_mut()[i] = orig - eps;
            let fm = loss(&xp);
            xp.data_mut()[i] = orig;
            let ng = (fp - fm) / (2.0 * eps);
            assert!(
                (din.data()[i] - ng).abs() < 0.02,
                "idx {i}: {} vs {ng}",
                din.data()[i]
            );
        }
    }

    #[test]
    fn pool_channels_independent() {
        let mut input = Tensor::zeros(Shape::d4(1, 2, 2, 2));
        input.data_mut()[0] = 7.0; // channel 0
        input.data_mut()[4] = -7.0; // channel 1 (all others 0)
        let (out, _) = maxpool2(&input);
        assert_eq!(out.data(), &[7.0, 0.0]);
    }
}
