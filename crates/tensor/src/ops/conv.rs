//! 2-D convolution kernels (NCHW, stride 1, symmetric zero padding) with
//! backward passes, plus the depthwise variant used by MobileNet-style
//! models.
//!
//! Two backends sit behind [`conv2d`] / [`conv2d_backward`]:
//!
//! * **direct** loops ([`conv2d_direct`], [`conv2d_backward_direct`]) — no
//!   intermediate buffers, best for tiny shapes where im2col's patch
//!   materialization costs more than it saves;
//! * **im2col + blocked GEMM** (`ops::im2col`) — lowers the convolution to
//!   the register-tiled matmul kernels, which win as soon as the implied
//!   GEMM has enough arithmetic to amortize packing.
//!
//! Dispatch ([`use_im2col`]) depends only on the static shapes, so a given
//! layer always takes the same path and runs stay bit-reproducible. The
//! direct backward keeps its `g == 0.0` skip: upstream gradients flow
//! through ReLU and genuinely contain zeros, unlike the dense activations
//! that made the old matmul zero-skip a pessimization.

use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Gradients produced by a convolution backward pass.
pub struct ConvGrads {
    pub dinput: Tensor,
    pub dweight: Tensor,
    pub dbias: Tensor,
}

pub(crate) fn out_hw(h: usize, w: usize, kh: usize, kw: usize, pad: usize) -> (usize, usize) {
    assert!(
        h + 2 * pad >= kh && w + 2 * pad >= kw,
        "kernel larger than padded input"
    );
    (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1)
}

/// Does the im2col-lowered GEMM carry enough arithmetic to beat the direct
/// loops? Calibrated with `dlion-bench kernels`: patch materialization is
/// ~2 passes over the patch matrix, so the GEMM must do a multiple of that
/// in useful MACs.
fn use_im2col(n: usize, c: usize, f: usize, kh: usize, kw: usize, oh: usize, ow: usize) -> bool {
    if cfg!(feature = "seed-kernels") {
        // The seed tree convolved directly at every shape.
        return false;
    }
    let macs = n * oh * ow * c * kh * kw * f;
    macs >= 16 * 1024
}

/// Standard convolution: `input (N,C,H,W)` ⊛ `weight (F,C,KH,KW)` + `bias (F)`
/// → `(N,F,OH,OW)`. Dispatches to the GEMM backend on large shapes.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    let (n, c) = (input.shape().dim(0), input.shape().dim(1));
    let (h, w) = (input.shape().dim(2), input.shape().dim(3));
    let (f, kh, kw) = (
        weight.shape().dim(0),
        weight.shape().dim(2),
        weight.shape().dim(3),
    );
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    if use_im2col(n, c, f, kh, kw, oh, ow) {
        crate::ops::im2col::conv2d_im2col(input, weight, bias, pad)
    } else {
        conv2d_direct(input, weight, bias, pad)
    }
}

/// Backward pass of [`conv2d`]. `dout` has shape `(N,F,OH,OW)`. Uses the
/// same backend selection as the forward pass.
pub fn conv2d_backward(input: &Tensor, weight: &Tensor, dout: &Tensor, pad: usize) -> ConvGrads {
    let (n, c) = (input.shape().dim(0), input.shape().dim(1));
    let (h, w) = (input.shape().dim(2), input.shape().dim(3));
    let (f, kh, kw) = (
        weight.shape().dim(0),
        weight.shape().dim(2),
        weight.shape().dim(3),
    );
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    if use_im2col(n, c, f, kh, kw, oh, ow) {
        crate::ops::im2col::conv2d_backward_im2col(input, weight, dout, pad)
    } else {
        conv2d_backward_direct(input, weight, dout, pad)
    }
}

/// [`conv2d`] with intermediates served from a caller-owned scratch arena.
/// The direct backend (tiny shapes) has no intermediates worth pooling and
/// ignores `s`; dispatch is identical to [`conv2d`], so results are
/// bit-identical.
pub fn conv2d_s(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
    s: &mut crate::scratch::Scratch,
) -> Tensor {
    let (n, c) = (input.shape().dim(0), input.shape().dim(1));
    let (h, w) = (input.shape().dim(2), input.shape().dim(3));
    let (f, kh, kw) = (
        weight.shape().dim(0),
        weight.shape().dim(2),
        weight.shape().dim(3),
    );
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    if use_im2col(n, c, f, kh, kw, oh, ow) {
        crate::ops::im2col::conv2d_im2col_s(input, weight, bias, pad, s)
    } else {
        conv2d_direct(input, weight, bias, pad)
    }
}

/// [`conv2d_backward`] with intermediates (and returned gradients, on the
/// im2col path) served from a caller-owned scratch arena.
pub fn conv2d_backward_s(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
    s: &mut crate::scratch::Scratch,
) -> ConvGrads {
    let (n, c) = (input.shape().dim(0), input.shape().dim(1));
    let (h, w) = (input.shape().dim(2), input.shape().dim(3));
    let (f, kh, kw) = (
        weight.shape().dim(0),
        weight.shape().dim(2),
        weight.shape().dim(3),
    );
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    if use_im2col(n, c, f, kh, kw, oh, ow) {
        crate::ops::im2col::conv2d_backward_im2col_s(input, weight, dout, pad, s)
    } else {
        conv2d_backward_direct(input, weight, dout, pad)
    }
}

/// Direct (loop-nest) convolution forward.
pub fn conv2d_direct(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let [f, cw, kh, kw] = [
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ];
    assert_eq!(c, cw, "conv2d channel mismatch");
    assert_eq!(bias.numel(), f, "conv2d bias size");
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    let id = input.data();
    let wd = weight.data();
    let bd = bias.data();
    let mut out = vec![0.0f32; n * f * oh * ow];
    par::par_chunks_mut(&mut out, f * oh * ow, |ni, ochunk| {
        let ibase = ni * c * h * w;
        for fi in 0..f {
            let b = bd[fi];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ci in 0..c {
                        let wbase = ((fi * c + ci) * kh) * kw;
                        let icbase = ibase + ci * h * w;
                        for ky in 0..kh {
                            let iy = oy + ky;
                            if iy < pad || iy >= h + pad {
                                continue;
                            }
                            let iy = iy - pad;
                            let wrow = wbase + ky * kw;
                            let irow = icbase + iy * w;
                            for kx in 0..kw {
                                let ix = ox + kx;
                                if ix < pad || ix >= w + pad {
                                    continue;
                                }
                                acc += wd[wrow + kx] * id[irow + (ix - pad)];
                            }
                        }
                    }
                    ochunk[(fi * oh + oy) * ow + ox] = acc;
                }
            }
        }
    });
    Tensor::from_vec(Shape::d4(n, f, oh, ow), out)
}

/// Direct (loop-nest) convolution backward.
pub fn conv2d_backward_direct(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
) -> ConvGrads {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let [f, _, kh, kw] = [
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ];
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    assert_eq!(
        dout.shape().dims(),
        &[n, f, oh, ow],
        "conv2d_backward dout shape"
    );
    let id = input.data();
    let wd = weight.data();
    let dd = dout.data();

    // dinput: parallel over batch items (each writes only its own slice).
    let mut dinput = vec![0.0f32; n * c * h * w];
    par::par_chunks_mut(&mut dinput, c * h * w, |ni, dslice| {
        let dbase = ni * f * oh * ow;
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dd[dbase + (fi * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        let wbase = ((fi * c + ci) * kh) * kw;
                        for ky in 0..kh {
                            let iy = oy + ky;
                            if iy < pad || iy >= h + pad {
                                continue;
                            }
                            let iy = iy - pad;
                            for kx in 0..kw {
                                let ix = ox + kx;
                                if ix < pad || ix >= w + pad {
                                    continue;
                                }
                                dslice[(ci * h + iy) * w + (ix - pad)] +=
                                    g * wd[wbase + ky * kw + kx];
                            }
                        }
                    }
                }
            }
        }
    });

    // dweight + dbias: parallel over output filters (each filter's gradient
    // slice is reduced over the batch with a fixed-order loop).
    let mut dweight = vec![0.0f32; f * c * kh * kw];
    let mut dbias = vec![0.0f32; f];
    par::par_chunks2_mut(
        &mut dweight,
        c * kh * kw,
        &mut dbias,
        1,
        |fi, wslice, dbv| {
            for ni in 0..n {
                let dbase = ni * f * oh * ow + fi * oh * ow;
                let ibase = ni * c * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dd[dbase + oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        dbv[0] += g;
                        for ci in 0..c {
                            let icbase = ibase + ci * h * w;
                            let wcbase = ci * kh * kw;
                            for ky in 0..kh {
                                let iy = oy + ky;
                                if iy < pad || iy >= h + pad {
                                    continue;
                                }
                                let iy = iy - pad;
                                for kx in 0..kw {
                                    let ix = ox + kx;
                                    if ix < pad || ix >= w + pad {
                                        continue;
                                    }
                                    wslice[wcbase + ky * kw + kx] +=
                                        g * id[icbase + iy * w + (ix - pad)];
                                }
                            }
                        }
                    }
                }
            }
        },
    );

    ConvGrads {
        dinput: Tensor::from_vec(Shape::d4(n, c, h, w), dinput),
        dweight: Tensor::from_vec(Shape::d4(f, c, kh, kw), dweight),
        dbias: Tensor::from_vec(Shape::d1(f), dbias),
    }
}

/// Depthwise convolution: `input (N,C,H,W)` ⊛ `weight (C,1,KH,KW)` + `bias (C)`
/// → `(N,C,OH,OW)`; channel `c` of the output depends only on channel `c`
/// of the input (channel multiplier 1, as in MobileNet).
pub fn depthwise_conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let [cw, one, kh, kw] = [
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ];
    assert_eq!(c, cw, "depthwise channel mismatch");
    assert_eq!(one, 1, "depthwise weight must be (C,1,KH,KW)");
    assert_eq!(bias.numel(), c);
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    let id = input.data();
    let wd = weight.data();
    let bd = bias.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    par::par_chunks_mut(&mut out, c * oh * ow, |ni, ochunk| {
        for ci in 0..c {
            let icbase = (ni * c + ci) * h * w;
            let wbase = ci * kh * kw;
            let b = bd[ci];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ky in 0..kh {
                        let iy = oy + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        let iy = iy - pad;
                        for kx in 0..kw {
                            let ix = ox + kx;
                            if ix < pad || ix >= w + pad {
                                continue;
                            }
                            acc += wd[wbase + ky * kw + kx] * id[icbase + iy * w + (ix - pad)];
                        }
                    }
                    ochunk[(ci * oh + oy) * ow + ox] = acc;
                }
            }
        }
    });
    Tensor::from_vec(Shape::d4(n, c, oh, ow), out)
}

/// Backward pass of [`depthwise_conv2d`].
pub fn depthwise_conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
) -> ConvGrads {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let [_, _, kh, kw] = [
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ];
    let (oh, ow) = out_hw(h, w, kh, kw, pad);
    assert_eq!(dout.shape().dims(), &[n, c, oh, ow]);
    let id = input.data();
    let wd = weight.data();
    let dd = dout.data();

    let mut dinput = vec![0.0f32; n * c * h * w];
    par::par_chunks_mut(&mut dinput, c * h * w, |ni, dslice| {
        for ci in 0..c {
            let dbase = (ni * c + ci) * oh * ow;
            let wbase = ci * kh * kw;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dd[dbase + oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ky in 0..kh {
                        let iy = oy + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        let iy = iy - pad;
                        for kx in 0..kw {
                            let ix = ox + kx;
                            if ix < pad || ix >= w + pad {
                                continue;
                            }
                            dslice[(ci * h + iy) * w + (ix - pad)] += g * wd[wbase + ky * kw + kx];
                        }
                    }
                }
            }
        }
    });

    let mut dweight = vec![0.0f32; c * kh * kw];
    let mut dbias = vec![0.0f32; c];
    par::par_chunks2_mut(&mut dweight, kh * kw, &mut dbias, 1, |ci, wslice, dbv| {
        for ni in 0..n {
            let dbase = (ni * c + ci) * oh * ow;
            let icbase = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dd[dbase + oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    dbv[0] += g;
                    for ky in 0..kh {
                        let iy = oy + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        let iy = iy - pad;
                        for kx in 0..kw {
                            let ix = ox + kx;
                            if ix < pad || ix >= w + pad {
                                continue;
                            }
                            wslice[ky * kw + kx] += g * id[icbase + iy * w + (ix - pad)];
                        }
                    }
                }
            }
        }
    });

    ConvGrads {
        dinput: Tensor::from_vec(Shape::d4(n, c, h, w), dinput),
        dweight: Tensor::from_vec(Shape::d4(c, 1, kh, kw), dweight),
        dbias: Tensor::from_vec(Shape::d1(c), dbias),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    /// Numerical gradient check of a scalar function of the conv output.
    fn num_grad(f: &mut dyn FnMut(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
        let mut g = Tensor::zeros(x.shape().clone());
        let mut xp = x.clone();
        for i in 0..x.numel() {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let fp = f(&xp);
            xp.data_mut()[i] = orig - eps;
            let fm = f(&xp);
            xp.data_mut()[i] = orig;
            g.data_mut()[i] = (fp - fm) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!((x - y).abs() < tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn conv2d_known_values() {
        // 1x1x3x3 input, single 2x2 filter of ones, no padding.
        let input = Tensor::from_fn(Shape::d4(1, 1, 3, 3), |i| i as f32);
        let weight = Tensor::full(Shape::d4(1, 1, 2, 2), 1.0);
        let bias = Tensor::zeros(Shape::d1(1));
        let out = conv2d(&input, &weight, &bias, 0);
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        // windows: [0,1,3,4]=8, [1,2,4,5]=12, [3,4,6,7]=20, [4,5,7,8]=24
        assert_eq!(out.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn conv2d_padding_preserves_size() {
        let input = Tensor::full(Shape::d4(2, 3, 5, 5), 1.0);
        let weight = Tensor::full(Shape::d4(4, 3, 3, 3), 0.1);
        let bias = Tensor::zeros(Shape::d1(4));
        let out = conv2d(&input, &weight, &bias, 1);
        assert_eq!(out.shape().dims(), &[2, 4, 5, 5]);
        // Center pixel sees all 27 taps: 27 * 0.1 = 2.7.
        assert!((out.at(&[0, 0, 2, 2]) - 2.7).abs() < 1e-5);
        // Corner sees 12 taps (2x2 spatial x 3 channels).
        assert!((out.at(&[0, 0, 0, 0]) - 1.2).abs() < 1e-5);
    }

    #[test]
    fn conv2d_bias_applied() {
        let input = Tensor::zeros(Shape::d4(1, 1, 3, 3));
        let weight = Tensor::zeros(Shape::d4(2, 1, 3, 3));
        let bias = Tensor::from_vec(Shape::d1(2), vec![0.5, -1.5]);
        let out = conv2d(&input, &weight, &bias, 1);
        assert!(out.data()[..9].iter().all(|&x| x == 0.5));
        assert!(out.data()[9..].iter().all(|&x| x == -1.5));
    }

    #[test]
    fn conv2d_gradients_match_numerical() {
        let mut rng = DetRng::seed_from_u64(10);
        let input = Tensor::randn(Shape::d4(2, 2, 4, 4), 1.0, &mut rng);
        let weight = Tensor::randn(Shape::d4(3, 2, 3, 3), 0.5, &mut rng);
        let bias = Tensor::randn(Shape::d1(3), 0.5, &mut rng);
        let pad = 1;
        // Scalar loss: sum of squares of the output.
        let loss = |out: &Tensor| 0.5 * out.sq_l2();
        let out = conv2d(&input, &weight, &bias, pad);
        let dout = out.clone(); // d(0.5*||y||^2)/dy = y
        let grads = conv2d_backward(&input, &weight, &dout, pad);

        let mut f_in = |x: &Tensor| loss(&conv2d(x, &weight, &bias, pad));
        let ng_in = num_grad(&mut f_in, &input, 1e-2);
        assert_close(&grads.dinput, &ng_in, 0.05, "dinput");

        let mut f_w = |wt: &Tensor| loss(&conv2d(&input, wt, &bias, pad));
        let ng_w = num_grad(&mut f_w, &weight, 1e-2);
        assert_close(&grads.dweight, &ng_w, 0.05, "dweight");

        let mut f_b = |bb: &Tensor| loss(&conv2d(&input, &weight, bb, pad));
        let ng_b = num_grad(&mut f_b, &bias, 1e-2);
        assert_close(&grads.dbias, &ng_b, 0.05, "dbias");
    }

    #[test]
    fn dispatched_backward_matches_direct_backend() {
        // Shape large enough to take the im2col path; direct loops are the
        // reference.
        let mut rng = DetRng::seed_from_u64(14);
        let input = Tensor::randn(Shape::d4(4, 3, 8, 8), 1.0, &mut rng);
        let weight = Tensor::randn(Shape::d4(6, 3, 3, 3), 0.5, &mut rng);
        let bias = Tensor::randn(Shape::d1(6), 0.5, &mut rng);
        let out = conv2d(&input, &weight, &bias, 1);
        let direct = conv2d_backward_direct(&input, &weight, &out, 1);
        let dispatched = conv2d_backward(&input, &weight, &out, 1);
        assert_close(&dispatched.dinput, &direct.dinput, 1e-3, "dinput");
        assert_close(&dispatched.dweight, &direct.dweight, 1e-2, "dweight");
        assert_close(&dispatched.dbias, &direct.dbias, 1e-2, "dbias");
    }

    #[test]
    fn depthwise_independent_channels() {
        // Two channels; filter for channel 1 is zero, so output channel 1
        // must be zero regardless of input.
        let mut rng = DetRng::seed_from_u64(11);
        let input = Tensor::randn(Shape::d4(1, 2, 4, 4), 1.0, &mut rng);
        let mut weight = Tensor::zeros(Shape::d4(2, 1, 3, 3));
        for i in 0..9 {
            weight.data_mut()[i] = 1.0; // channel 0 filter = ones
        }
        let bias = Tensor::zeros(Shape::d1(2));
        let out = depthwise_conv2d(&input, &weight, &bias, 1);
        assert_eq!(out.shape().dims(), &[1, 2, 4, 4]);
        assert!(
            out.data()[16..].iter().all(|&x| x == 0.0),
            "channel 1 must be zero"
        );
        assert!(out.data()[..16].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn depthwise_gradients_match_numerical() {
        let mut rng = DetRng::seed_from_u64(12);
        let input = Tensor::randn(Shape::d4(2, 3, 4, 4), 1.0, &mut rng);
        let weight = Tensor::randn(Shape::d4(3, 1, 3, 3), 0.5, &mut rng);
        let bias = Tensor::randn(Shape::d1(3), 0.5, &mut rng);
        let pad = 1;
        let loss = |out: &Tensor| 0.5 * out.sq_l2();
        let out = depthwise_conv2d(&input, &weight, &bias, pad);
        let grads = depthwise_conv2d_backward(&input, &weight, &out, pad);

        let mut f_in = |x: &Tensor| loss(&depthwise_conv2d(x, &weight, &bias, pad));
        let ng_in = num_grad(&mut f_in, &input, 1e-2);
        assert_close(&grads.dinput, &ng_in, 0.05, "dw dinput");

        let mut f_w = |wt: &Tensor| loss(&depthwise_conv2d(&input, wt, &bias, pad));
        let ng_w = num_grad(&mut f_w, &weight, 1e-2);
        assert_close(&grads.dweight, &ng_w, 0.05, "dw dweight");

        let mut f_b = |bb: &Tensor| loss(&depthwise_conv2d(&input, &weight, bb, pad));
        let ng_b = num_grad(&mut f_b, &bias, 1e-2);
        assert_close(&grads.dbias, &ng_b, 0.05, "dw dbias");
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv2d_channel_mismatch_panics() {
        let input = Tensor::zeros(Shape::d4(1, 2, 4, 4));
        let weight = Tensor::zeros(Shape::d4(1, 3, 3, 3));
        let bias = Tensor::zeros(Shape::d1(1));
        conv2d(&input, &weight, &bias, 1);
    }

    #[test]
    fn conv2d_deterministic() {
        let mut rng = DetRng::seed_from_u64(13);
        let input = Tensor::randn(Shape::d4(8, 4, 8, 8), 1.0, &mut rng);
        let weight = Tensor::randn(Shape::d4(8, 4, 3, 3), 0.5, &mut rng);
        let bias = Tensor::randn(Shape::d1(8), 0.5, &mut rng);
        let a = conv2d(&input, &weight, &bias, 1);
        let b = conv2d(&input, &weight, &bias, 1);
        assert_eq!(a.data(), b.data());
    }
}
