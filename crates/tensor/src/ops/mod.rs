//! Compute kernels: matrix multiplication, 2-D convolution (standard and
//! depthwise), max-pooling and activations, each with a hand-written
//! backward pass.
//!
//! # Kernel architecture
//!
//! The GEMM family (`ops::matmul`) is cache-blocked and register-tiled:
//! the right-hand operand is packed into 8-column panels, the micro-kernel
//! computes a 4×8 accumulator tile per sweep, and row blocks of the output
//! are distributed over the in-tree thread pool (`crate::par`). Large
//! convolutions are lowered onto those GEMMs via `ops::im2col`
//! (forward *and* backward); tiny shapes keep the branch-free direct loops
//! in `ops::conv`. Backend dispatch depends only on static shapes.
//!
//! # Determinism rules
//!
//! All kernels follow two rules that make results bit-identical across
//! runs, thread counts, and schedulings:
//!
//! 1. every output element is written by exactly one task, and
//! 2. every reduction into an element is a single sequential chain in a
//!    fixed index order (ascending `k` for GEMM, the loop-nest order for
//!    direct conv, chunk-index order for sums).
//!
//! In particular the blocked GEMMs are bit-identical to the naive `i,j,k`
//! triple loop — tiling only regroups *which* elements are computed
//! together, never the order of additions inside one element (no `mul_add`
//! contraction, no split-`k`). Property tests in `tests/proptest_tensor.rs`
//! enforce this with exact `f32` equality on shapes that are not multiples
//! of the tile sizes.
//!
//! # Scratch / `_into` entry points
//!
//! Hot-path kernels have `_into` twins (e.g. `matmul_into`) that write into
//! caller-owned buffers; together with `crate::Scratch` (a per-worker
//! size-bucketed buffer pool) the training step runs without per-iteration
//! heap allocation. See `crate::scratch` for the ownership story.

pub mod activation;
pub mod conv;
pub mod im2col;
pub mod matmul;
pub mod pool;

pub use activation::{relu, relu_backward, softmax_rows, softmax_xent};
pub use conv::{
    conv2d, conv2d_backward, conv2d_backward_direct, conv2d_backward_s, conv2d_direct, conv2d_s,
    depthwise_conv2d, depthwise_conv2d_backward, ConvGrads,
};
pub use im2col::{
    col2im, col2im_into, conv2d_backward_im2col, conv2d_backward_im2col_s, conv2d_im2col,
    conv2d_im2col_s, im2col, im2col_into,
};
pub use matmul::{
    matmul, matmul_into, matmul_naive, matmul_nt, matmul_nt_into, matmul_nt_seed_into,
    matmul_seed_into, matmul_tn, matmul_tn_into, matmul_tn_seed_into,
};
pub use pool::{maxpool2, maxpool2_backward, maxpool2_backward_into, maxpool2_into};
