//! Compute kernels: matrix multiplication, 2-D convolution (standard and
//! depthwise), max-pooling and activations, each with a hand-written
//! backward pass.
//!
//! Kernels parallelize over independent output slices with rayon, so the
//! result is identical to the serial computation regardless of thread
//! scheduling (each output element is produced by exactly one task with a
//! fixed-order inner loop).

pub mod activation;
pub mod conv;
pub mod im2col;
pub mod matmul;
pub mod pool;

pub use activation::{relu, relu_backward, softmax_rows, softmax_xent};
pub use conv::{conv2d, conv2d_backward, depthwise_conv2d, depthwise_conv2d_backward, ConvGrads};
pub use im2col::{conv2d_im2col, im2col};
pub use matmul::{matmul, matmul_nt, matmul_tn};
pub use pool::{maxpool2, maxpool2_backward};
