//! Activation and loss kernels: ReLU and softmax cross-entropy.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Elementwise `max(0, x)`.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Backward ReLU: passes gradient where the *input* was positive.
pub fn relu_backward(input: &Tensor, dout: &Tensor) -> Tensor {
    assert_eq!(input.shape(), dout.shape(), "relu_backward shape mismatch");
    let mut out = dout.clone();
    for (g, &x) in out.data_mut().iter_mut().zip(input.data()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    out
}

/// Row-wise softmax of a rank-2 tensor (numerically stabilized).
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax needs rank-2 logits");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    let mut out = logits.clone();
    for r in 0..n {
        let row = &mut out.data_mut()[r * c..(r + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax cross-entropy with integer labels.
///
/// Returns `(mean_loss, dlogits)` where `dlogits = (softmax - onehot)/N` —
/// the mean-reduced gradient matching Eq. 2 of the paper (gradients are
/// averaged over the minibatch).
pub fn softmax_xent(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2);
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let probs = softmax_rows(logits);
    let mut dlogits = probs.clone();
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range (classes {c})");
        let p = probs.at(&[r, y]).max(1e-12);
        loss += -(p as f64).ln();
        *dlogits.at_mut(&[r, y]) -= 1.0;
    }
    dlogits.scale(inv_n);
    ((loss / n as f64) as f32, dlogits)
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.shape().rank(), 2);
    let n = logits.shape().dim(0);
    assert_eq!(labels.len(), n);
    if n == 0 {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(r, &y)| logits.argmax_row(r) == y)
        .count();
    correct as f64 / n as f64
}

/// One-hot encode labels into an `N×C` tensor.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut t = Tensor::zeros(Shape::d2(labels.len(), classes));
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < classes);
        *t.at_mut(&[r, y]) = 1.0;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_vec(Shape::d1(4), vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let dout = Tensor::full(Shape::d1(4), 1.0);
        let dx = relu_backward(&x, &dout);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let logits = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        assert!(p.at(&[0, 2]) > p.at(&[0, 1]) && p.at(&[0, 1]) > p.at(&[0, 0]));
        // Large logits must not produce NaN (stability).
        assert!(!p.has_non_finite());
        assert!((p.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn xent_uniform_logits_loss_is_ln_c() {
        let logits = Tensor::zeros(Shape::d2(4, 10));
        let labels = vec![0, 3, 7, 9];
        let (loss, _) = softmax_xent(&logits, &labels);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn xent_gradient_matches_numerical() {
        use crate::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(31);
        let logits = Tensor::randn(Shape::d2(3, 5), 1.0, &mut rng);
        let labels = vec![1, 4, 0];
        let (_, grad) = softmax_xent(&logits, &labels);
        let eps = 1e-3;
        let mut lp = logits.clone();
        for i in 0..logits.numel() {
            let orig = lp.data()[i];
            lp.data_mut()[i] = orig + eps;
            let (fp, _) = softmax_xent(&lp, &labels);
            lp.data_mut()[i] = orig - eps;
            let (fm, _) = softmax_xent(&lp, &labels);
            lp.data_mut()[i] = orig;
            let ng = (fp - fm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - ng).abs() < 1e-3,
                "idx {i}: {} vs {ng}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn xent_gradient_rows_sum_to_zero() {
        use crate::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(32);
        let logits = Tensor::randn(Shape::d2(4, 6), 2.0, &mut rng);
        let labels = vec![0, 1, 2, 3];
        let (_, grad) = softmax_xent(&logits, &labels);
        for r in 0..4 {
            let s: f32 = grad.data()[r * 6..(r + 1) * 6].iter().sum();
            assert!(s.abs() < 1e-5, "row {r} grad sums to {s}");
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(Shape::d2(3, 2), vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn one_hot_encoding() {
        let t = one_hot(&[2, 0], 3);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn xent_bad_label_panics() {
        let logits = Tensor::zeros(Shape::d2(1, 3));
        softmax_xent(&logits, &[5]);
    }
}
