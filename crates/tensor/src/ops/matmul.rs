//! Dense matrix multiplication kernels.
//!
//! Three variants cover everything a dense layer's forward/backward pass
//! needs without materializing transposes:
//!
//! * [`matmul`]   — `C = A·B`      (`M×K · K×N`)
//! * [`matmul_nt`] — `C = A·Bᵀ`    (`M×K · N×K`)
//! * [`matmul_tn`] — `C = Aᵀ·B`    (`K×M · K×N`)

use crate::shape::Shape;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Parallelize only when the work is big enough to amortize task overhead.
const PAR_THRESHOLD: usize = 64 * 64;

/// `C = A·B` for `A: M×K`, `B: K×N`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let row = |i: usize, out_row: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, r)| row(i, r));
    } else {
        out.chunks_mut(n).enumerate().for_each(|(i, r)| row(i, r));
    }
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// `C = A·Bᵀ` for `A: M×K`, `B: N×K`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, k2) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let row = |i: usize, out_row: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, r)| row(i, r));
    } else {
        out.chunks_mut(n).enumerate().for_each(|(i, r)| row(i, r));
    }
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// `C = Aᵀ·B` for `A: K×M`, `B: K×N`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (k, m) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let row = |i: usize, out_row: &mut [f32]| {
        for kk in 0..k {
            let av = ad[kk * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, r)| row(i, r));
    } else {
        out.chunks_mut(n).enumerate().for_each(|(i, r)| row(i, r));
    }
    Tensor::from_vec(Shape::d2(m, n), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros(Shape::d2(m, n));
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    fn transpose(a: &Tensor) -> Tensor {
        let (m, n) = (a.shape().dim(0), a.shape().dim(1));
        Tensor::from_fn(Shape::d2(n, m), |f| {
            let (i, j) = (f / m, f % m);
            a.at(&[j, i])
        })
    }

    #[test]
    fn matmul_small_exact() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = DetRng::seed_from_u64(1);
        let a = Tensor::randn(Shape::d2(5, 5), 1.0, &mut rng);
        let eye = Tensor::from_fn(Shape::d2(5, 5), |f| if f / 5 == f % 5 { 1.0 } else { 0.0 });
        let c = matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let mut rng = DetRng::seed_from_u64(2);
        let a = Tensor::randn(Shape::d2(33, 47), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(47, 29), 1.0, &mut rng);
        let c = matmul(&a, &b);
        let expect = naive(&a, &b);
        for (x, y) in c.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = DetRng::seed_from_u64(3);
        let a = Tensor::randn(Shape::d2(7, 11), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(5, 11), 1.0, &mut rng);
        let c = matmul_nt(&a, &b);
        let expect = naive(&a, &transpose(&b));
        for (x, y) in c.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = DetRng::seed_from_u64(4);
        let a = Tensor::randn(Shape::d2(11, 7), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(11, 5), 1.0, &mut rng);
        let c = matmul_tn(&a, &b);
        let expect = naive(&transpose(&a), &b);
        for (x, y) in c.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(4, 2));
        matmul(&a, &b);
    }

    #[test]
    fn matmul_deterministic_across_runs() {
        let mut rng = DetRng::seed_from_u64(5);
        let a = Tensor::randn(Shape::d2(64, 64), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(64, 64), 1.0, &mut rng);
        let c1 = matmul(&a, &b);
        let c2 = matmul(&a, &b);
        assert_eq!(
            c1.data(),
            c2.data(),
            "parallel matmul must be deterministic"
        );
    }
}
