//! Dense matrix multiplication kernels: cache-blocked, register-tiled,
//! panel-packed, parallel over row blocks.
//!
//! Three variants cover everything a dense layer's forward/backward pass
//! needs without materializing transposes:
//!
//! * [`matmul`]    — `C = A·B`      (`M×K · K×N`)
//! * [`matmul_nt`] — `C = A·Bᵀ`    (`M×K · N×K`)
//! * [`matmul_tn`] — `C = Aᵀ·B`    (`K×M · K×N`)
//!
//! each with a `_into` twin that writes into a caller-owned buffer so the
//! training hot path can run allocation-free (see [`crate::Scratch`]).
//!
//! # Blocking / packing scheme
//!
//! The right-hand operand is packed once per call into column panels of
//! [`NR`] = 16 columns (`pb[kk * NR + c] = B[kk][j0 + c]`, zero-padded on the
//! ragged edge), so the micro-kernel streams B contiguously regardless of
//! the variant's storage order. The micro-kernel computes an `MR×NR`
//! (4×16) register tile: for each `k` it loads one packed B row and `MR`
//! A scalars, updating 64 accumulators. On AVX-512 hosts the full-tile
//! case uses explicit 512-bit `mul`/`add` intrinsics (one ZMM per row);
//! elsewhere a constant-trip-count scalar loop autovectorizes. Row blocks
//! of [`MC`] rows are distributed over the thread pool; each task owns a
//! disjoint slice of `C`.
//!
//! # Determinism rules
//!
//! Every output element is produced by a *single sequential accumulation
//! chain in strictly ascending `k`*: `c = ((0 + a_0·b_0) + a_1·b_1) + …`.
//! Tiling changes which elements are computed together, never the order of
//! additions within one element, and `mul_add`/split-`k` reductions are
//! deliberately not used — so every variant is bit-identical to the naive
//! `i,j,k` triple loop, on any thread count, on every run. (The seed
//! kernels' `av == 0.0` skip is gone: it cost a branch per inner iteration
//! on dense activations and made results depend on signed zeros.)

use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Micro-tile rows (A rows per register tile).
pub const MR: usize = 4;
/// Micro-tile columns (packed B panel width): one 512-bit vector, or two
/// 256-bit ones on AVX2-only hosts.
pub const NR: usize = 16;
/// Rows of `C` per parallel task.
const MC: usize = 32;

/// Per-kernel parallelism thresholds on `m * n * k`, calibrated with
/// `dlion-bench kernels` (see `results/BENCH_kernels.json`): a task must be
/// worth ≥ ~10 µs of math before pool dispatch pays for itself. `matmul_nt`
/// amortizes an extra transpose-pack of B, so it parallelizes slightly later.
const PAR_FLOPS_MM: usize = 32 * 32 * 32;
const PAR_FLOPS_NT: usize = 40 * 32 * 32;
const PAR_FLOPS_TN: usize = 32 * 32 * 32;

thread_local! {
    /// Reusable panel-packing buffer (per thread; GEMMs never nest).
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Pack row-major `B: K×N` into `ceil(n/NR)` column panels, each `k × NR`
/// contiguous, zero-padding the last panel's missing columns.
fn pack_panels_rowmajor(bd: &[f32], k: usize, n: usize, pb: &mut Vec<f32>) {
    let np = n.div_ceil(NR);
    pb.clear();
    pb.resize(np * k * NR, 0.0);
    for jp in 0..np {
        let j0 = jp * NR;
        let ne = NR.min(n - j0);
        let panel = &mut pb[jp * k * NR..(jp + 1) * k * NR];
        for kk in 0..k {
            let src = &bd[kk * n + j0..kk * n + j0 + ne];
            panel[kk * NR..kk * NR + ne].copy_from_slice(src);
        }
    }
}

/// Pack row-major `B: N×K` (i.e. Bᵀ of the multiply) into the same panel
/// layout as [`pack_panels_rowmajor`].
fn pack_panels_transposed(bd: &[f32], k: usize, n: usize, pb: &mut Vec<f32>) {
    let np = n.div_ceil(NR);
    pb.clear();
    pb.resize(np * k * NR, 0.0);
    for jp in 0..np {
        let j0 = jp * NR;
        let ne = NR.min(n - j0);
        let panel = &mut pb[jp * k * NR..(jp + 1) * k * NR];
        for c in 0..ne {
            let brow = &bd[(j0 + c) * k..(j0 + c + 1) * k];
            for (kk, &v) in brow.iter().enumerate() {
                panel[kk * NR + c] = v;
            }
        }
    }
}

/// AVX-512 full-tile micro-kernels. Deliberately `mul` + `add`, never FMA:
/// the determinism contract is bit-identity with the naive mul-then-add
/// loop, and a fused multiply-add rounds once instead of twice.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{MR, NR};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("avx512f")
    }

    /// Full `MR×NR` tile, A row-major (`a[r * a_stride + kk]`).
    ///
    /// # Safety
    /// AVX-512F must be available; `a` must cover `(MR-1)*a_stride + k`
    /// elements and `panel` at least `k * NR`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn rows(
        k: usize,
        a: &[f32],
        a_stride: usize,
        panel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c0 = _mm512_loadu_ps(acc[0].as_ptr());
        let mut c1 = _mm512_loadu_ps(acc[1].as_ptr());
        let mut c2 = _mm512_loadu_ps(acc[2].as_ptr());
        let mut c3 = _mm512_loadu_ps(acc[3].as_ptr());
        let ap = a.as_ptr();
        for kk in 0..k {
            let b = _mm512_loadu_ps(panel.as_ptr().add(kk * NR));
            c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(*ap.add(kk)), b));
            c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(*ap.add(a_stride + kk)), b));
            c2 = _mm512_add_ps(
                c2,
                _mm512_mul_ps(_mm512_set1_ps(*ap.add(2 * a_stride + kk)), b),
            );
            c3 = _mm512_add_ps(
                c3,
                _mm512_mul_ps(_mm512_set1_ps(*ap.add(3 * a_stride + kk)), b),
            );
        }
        _mm512_storeu_ps(acc[0].as_mut_ptr(), c0);
        _mm512_storeu_ps(acc[1].as_mut_ptr(), c1);
        _mm512_storeu_ps(acc[2].as_mut_ptr(), c2);
        _mm512_storeu_ps(acc[3].as_mut_ptr(), c3);
    }

    /// Full `MR×NR` tile, A column-major (`a[kk * a_stride + r]`).
    ///
    /// # Safety
    /// AVX-512F must be available; `a` must cover `(k-1)*a_stride + MR`
    /// elements and `panel` at least `k * NR`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn cols(
        k: usize,
        a: &[f32],
        a_stride: usize,
        panel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c0 = _mm512_loadu_ps(acc[0].as_ptr());
        let mut c1 = _mm512_loadu_ps(acc[1].as_ptr());
        let mut c2 = _mm512_loadu_ps(acc[2].as_ptr());
        let mut c3 = _mm512_loadu_ps(acc[3].as_ptr());
        let ap = a.as_ptr();
        for kk in 0..k {
            let b = _mm512_loadu_ps(panel.as_ptr().add(kk * NR));
            let arow = ap.add(kk * a_stride);
            c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(*arow), b));
            c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(*arow.add(1)), b));
            c2 = _mm512_add_ps(c2, _mm512_mul_ps(_mm512_set1_ps(*arow.add(2)), b));
            c3 = _mm512_add_ps(c3, _mm512_mul_ps(_mm512_set1_ps(*arow.add(3)), b));
        }
        _mm512_storeu_ps(acc[0].as_mut_ptr(), c0);
        _mm512_storeu_ps(acc[1].as_mut_ptr(), c1);
        _mm512_storeu_ps(acc[2].as_mut_ptr(), c2);
        _mm512_storeu_ps(acc[3].as_mut_ptr(), c3);
    }
}

/// `mr × NR` register tile against a packed panel, A accessed row-major
/// (`a[r * a_stride + kk]`). `a` must be positioned at `(row0, k=0)`.
///
/// The full-tile case runs with *constant* trip counts on a local copy of
/// the accumulators: SROA then promotes the whole `MR×NR` tile into vector
/// registers, which is the entire point of register tiling (with a runtime
/// `mr` the tile lives in memory and every `k` step pays loads + stores).
#[inline]
fn micro_a_rows(
    mr: usize,
    k: usize,
    a: &[f32],
    a_stride: usize,
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    if mr == MR {
        #[cfg(target_arch = "x86_64")]
        if simd::available() {
            // SAFETY: feature checked; slice bounds asserted by callers'
            // indexing below would hold for the same accesses.
            unsafe { simd::rows(k, a, a_stride, panel, acc) };
            return;
        }
        let mut t = *acc;
        for kk in 0..k {
            let b8 = &panel[kk * NR..kk * NR + NR];
            for r in 0..MR {
                let av = a[r * a_stride + kk];
                for c in 0..NR {
                    t[r][c] += av * b8[c];
                }
            }
        }
        *acc = t;
        return;
    }
    for kk in 0..k {
        let b8 = &panel[kk * NR..kk * NR + NR];
        for r in 0..mr {
            let av = a[r * a_stride + kk];
            for c in 0..NR {
                acc[r][c] += av * b8[c];
            }
        }
    }
}

/// Same tile with A accessed column-major (`a[kk * a_stride + r]`), for the
/// `Aᵀ·B` variant. `a` must be positioned at `(k=0, col0)`.
#[inline]
fn micro_a_cols(
    mr: usize,
    k: usize,
    a: &[f32],
    a_stride: usize,
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    if mr == MR {
        #[cfg(target_arch = "x86_64")]
        if simd::available() {
            // SAFETY: feature checked; same element accesses as the
            // portable loop below.
            unsafe { simd::cols(k, a, a_stride, panel, acc) };
            return;
        }
        let mut t = *acc;
        for kk in 0..k {
            let b8 = &panel[kk * NR..kk * NR + NR];
            let arow = &a[kk * a_stride..kk * a_stride + MR];
            for r in 0..MR {
                let av = arow[r];
                for c in 0..NR {
                    t[r][c] += av * b8[c];
                }
            }
        }
        *acc = t;
        return;
    }
    for kk in 0..k {
        let b8 = &panel[kk * NR..kk * NR + NR];
        let arow = &a[kk * a_stride..kk * a_stride + mr];
        for r in 0..mr {
            let av = arow[r];
            for c in 0..NR {
                acc[r][c] += av * b8[c];
            }
        }
    }
}

/// Shared driver: C rows `[0, m)` in MC-row tasks, each task sweeping its
/// rows in MR strips against every packed panel.
#[allow(clippy::too_many_arguments)]
fn gemm_driver(
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    packed: &[f32],
    parallel: bool,
    a_at_row: &(dyn Fn(usize) -> (usize, usize) + Sync), // row -> (offset, stride)
    col_major_a: bool,
    ad: &[f32],
) {
    assert_eq!(out.len(), m * n, "gemm output buffer size");
    let np = n.div_ceil(NR);
    let body = |blk: usize, chunk: &mut [f32]| {
        let i0 = blk * MC;
        let rows = chunk.len() / n;
        let mut r0 = 0;
        while r0 < rows {
            let mr = MR.min(rows - r0);
            for jp in 0..np {
                let j0 = jp * NR;
                let ne = NR.min(n - j0);
                let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
                let mut acc = [[0.0f32; NR]; MR];
                let (off, stride) = a_at_row(i0 + r0);
                if col_major_a {
                    micro_a_cols(mr, k, &ad[off..], stride, panel, &mut acc);
                } else {
                    micro_a_rows(mr, k, &ad[off..], stride, panel, &mut acc);
                }
                for r in 0..mr {
                    let dst = &mut chunk[(r0 + r) * n + j0..(r0 + r) * n + j0 + ne];
                    dst.copy_from_slice(&acc[r][..ne]);
                }
            }
            r0 += mr;
        }
    };
    if parallel {
        par::par_chunks_mut(out, MC * n, body);
    } else {
        out.chunks_mut(MC * n)
            .enumerate()
            .for_each(|(b, c)| body(b, c));
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank-2");
    (t.shape().dim(0), t.shape().dim(1))
}

/// `C = A·B` for `A: M×K`, `B: K×N`, written into `out` (`len == m * n`).
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let _p = dlion_telemetry::profile_scope(dlion_telemetry::Phase::Gemm);
    if cfg!(feature = "seed-kernels") {
        return matmul_seed_into(a, b, out);
    }
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let (ad, bd) = (a.data(), b.data());
    PACK_BUF.with(|p| {
        let mut pb = std::mem::take(&mut *p.borrow_mut());
        pack_panels_rowmajor(bd, k, n, &mut pb);
        gemm_driver(
            m,
            k,
            n,
            out,
            &pb,
            m * n * k >= PAR_FLOPS_MM,
            &|row| (row * k, k),
            false,
            ad,
        );
        *p.borrow_mut() = pb;
    });
}

/// `C = A·Bᵀ` for `A: M×K`, `B: N×K`, written into `out` (`len == m * n`).
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let _p = dlion_telemetry::profile_scope(dlion_telemetry::Phase::Gemm);
    if cfg!(feature = "seed-kernels") {
        return matmul_nt_seed_into(a, b, out);
    }
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    let (ad, bd) = (a.data(), b.data());
    PACK_BUF.with(|p| {
        let mut pb = std::mem::take(&mut *p.borrow_mut());
        pack_panels_transposed(bd, k, n, &mut pb);
        gemm_driver(
            m,
            k,
            n,
            out,
            &pb,
            m * n * k >= PAR_FLOPS_NT,
            &|row| (row * k, k),
            false,
            ad,
        );
        *p.borrow_mut() = pb;
    });
}

/// `C = Aᵀ·B` for `A: K×M`, `B: K×N`, written into `out` (`len == m * n`).
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let _p = dlion_telemetry::profile_scope(dlion_telemetry::Phase::Gemm);
    if cfg!(feature = "seed-kernels") {
        return matmul_tn_seed_into(a, b, out);
    }
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    let (ad, bd) = (a.data(), b.data());
    PACK_BUF.with(|p| {
        let mut pb = std::mem::take(&mut *p.borrow_mut());
        pack_panels_rowmajor(bd, k, n, &mut pb);
        gemm_driver(
            m,
            k,
            n,
            out,
            &pb,
            m * n * k >= PAR_FLOPS_TN,
            &|row| (row, m),
            true,
            ad,
        );
        *p.borrow_mut() = pb;
    });
}

/// `C = A·B` for `A: M×K`, `B: K×N`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = dims2(a, "matmul lhs");
    let (_, n) = dims2(b, "matmul rhs");
    let mut out = vec![0.0f32; m * n];
    matmul_into(a, b, &mut out);
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// `C = A·Bᵀ` for `A: M×K`, `B: N×K`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = dims2(a, "matmul_nt lhs");
    let (n, _) = dims2(b, "matmul_nt rhs");
    let mut out = vec![0.0f32; m * n];
    matmul_nt_into(a, b, &mut out);
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// `C = Aᵀ·B` for `A: K×M`, `B: K×N`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, m) = dims2(a, "matmul_tn lhs");
    let (_, n) = dims2(b, "matmul_tn rhs");
    let mut out = vec![0.0f32; m * n];
    matmul_tn_into(a, b, &mut out);
    Tensor::from_vec(Shape::d2(m, n), out)
}

/// Reference kernel: the naive `i,j,k` triple loop the blocked kernels must
/// match bit-for-bit. Kept public for tests and the bench binary.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += ad[i * k + kk] * bd[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(Shape::d2(m, n), out)
}

// ---------------------------------------------------------------------------
// Seed (pre-optimization) kernels.
//
// The algorithms this repository shipped before the blocked rewrite: plain
// row-wise loops with an `av == 0.0` skip in the axpy variants and no
// packing or register tiling. Always compiled so the bench binary can
// measure them head-to-head against the blocked kernels; building with
// `--features seed-kernels` additionally reroutes the public `_into` entry
// points through them, so one source tree produces an honest "before"
// binary for end-to-end comparisons. (The seed kernels accumulate in
// k-major axpy order, so under the feature the blocked kernels' exact
// bit-match tests do not apply.)

/// Seed algorithm for [`matmul_into`]: per output row, axpy each `A[i][k]`
/// against row `k` of B, skipping zero multipliers.
pub fn matmul_seed_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    assert_eq!(out.len(), m * n, "gemm output buffer size");
    let (ad, bd) = (a.data(), b.data());
    let body = |i0: usize, rows: &mut [f32]| {
        for (r, orow) in rows.chunks_mut(n).enumerate() {
            let i = i0 + r;
            orow.fill(0.0);
            for kk in 0..k {
                let av = ad[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    };
    if m * n * k >= PAR_FLOPS_MM {
        par::par_chunks_mut(out, n, body);
    } else {
        body(0, out);
    }
}

/// Seed algorithm for [`matmul_nt_into`]: per output element, a dot product
/// of one A row with one B row.
pub fn matmul_nt_seed_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    assert_eq!(out.len(), m * n, "gemm output buffer size");
    let (ad, bd) = (a.data(), b.data());
    let body = |i0: usize, rows: &mut [f32]| {
        for (r, orow) in rows.chunks_mut(n).enumerate() {
            let arow = &ad[(i0 + r) * k..(i0 + r + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += arow[kk] * brow[kk];
                }
                *o = acc;
            }
        }
    };
    if m * n * k >= PAR_FLOPS_NT {
        par::par_chunks_mut(out, n, body);
    } else {
        body(0, out);
    }
}

/// Seed algorithm for [`matmul_tn_into`]: per output row, axpy each
/// `A[k][i]` (strided) against row `k` of B, skipping zero multipliers.
pub fn matmul_tn_seed_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    assert_eq!(out.len(), m * n, "gemm output buffer size");
    let (ad, bd) = (a.data(), b.data());
    let body = |i0: usize, rows: &mut [f32]| {
        for (r, orow) in rows.chunks_mut(n).enumerate() {
            let i = i0 + r;
            orow.fill(0.0);
            for kk in 0..k {
                let av = ad[kk * m + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    };
    if m * n * k >= PAR_FLOPS_TN {
        par::par_chunks_mut(out, n, body);
    } else {
        body(0, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        matmul_naive(a, b)
    }

    fn transpose(a: &Tensor) -> Tensor {
        let (m, n) = (a.shape().dim(0), a.shape().dim(1));
        Tensor::from_fn(Shape::d2(n, m), |f| {
            let (i, j) = (f / m, f % m);
            a.at(&[j, i])
        })
    }

    #[test]
    fn matmul_small_exact() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = DetRng::seed_from_u64(1);
        let a = Tensor::randn(Shape::d2(5, 5), 1.0, &mut rng);
        let eye = Tensor::from_fn(Shape::d2(5, 5), |f| if f / 5 == f % 5 { 1.0 } else { 0.0 });
        let c = matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let mut rng = DetRng::seed_from_u64(2);
        let a = Tensor::randn(Shape::d2(33, 47), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(47, 29), 1.0, &mut rng);
        let c = matmul(&a, &b);
        let expect = naive(&a, &b);
        for (x, y) in c.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    /// The blocked kernels' determinism contract: bit-identical to the naive
    /// triple loop, including shapes not divisible by MR/NR/MC.
    #[test]
    fn blocked_kernels_bit_match_naive() {
        let mut rng = DetRng::seed_from_u64(20);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (33, 47, 29),
            (64, 64, 64),
            (65, 31, 70),
        ] {
            let a = Tensor::randn(Shape::d2(m, k), 1.0, &mut rng);
            let b = Tensor::randn(Shape::d2(k, n), 1.0, &mut rng);
            let c = matmul(&a, &b);
            let expect = naive(&a, &b);
            assert_eq!(c.data(), expect.data(), "matmul {m}x{k}x{n}");

            let bt = transpose(&b);
            let c_nt = matmul_nt(&a, &bt);
            assert_eq!(c_nt.data(), expect.data(), "matmul_nt {m}x{k}x{n}");

            let at = transpose(&a);
            let c_tn = matmul_tn(&at, &b);
            assert_eq!(c_tn.data(), expect.data(), "matmul_tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let mut rng = DetRng::seed_from_u64(21);
        let a = Tensor::randn(Shape::d2(13, 21), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(21, 10), 1.0, &mut rng);
        let mut out = vec![7.0f32; 130]; // stale contents must be overwritten
        matmul_into(&a, &b, &mut out);
        assert_eq!(out, matmul(&a, &b).data());

        let bt = transpose(&b);
        matmul_nt_into(&a, &bt, &mut out);
        assert_eq!(out, matmul_nt(&a, &bt).data());

        let at = transpose(&a);
        matmul_tn_into(&at, &b, &mut out);
        assert_eq!(out, matmul_tn(&at, &b).data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = DetRng::seed_from_u64(3);
        let a = Tensor::randn(Shape::d2(7, 11), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(5, 11), 1.0, &mut rng);
        let c = matmul_nt(&a, &b);
        let expect = naive(&a, &transpose(&b));
        for (x, y) in c.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = DetRng::seed_from_u64(4);
        let a = Tensor::randn(Shape::d2(11, 7), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(11, 5), 1.0, &mut rng);
        let c = matmul_tn(&a, &b);
        let expect = naive(&transpose(&a), &b);
        for (x, y) in c.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(4, 2));
        matmul(&a, &b);
    }

    #[test]
    fn matmul_deterministic_across_runs() {
        let mut rng = DetRng::seed_from_u64(5);
        let a = Tensor::randn(Shape::d2(64, 64), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(64, 64), 1.0, &mut rng);
        let c1 = matmul(&a, &b);
        let c2 = matmul(&a, &b);
        assert_eq!(
            c1.data(),
            c2.data(),
            "parallel matmul must be deterministic"
        );
    }
}
