//! im2col convolution backend.
//!
//! The classic HPC formulation: lower the convolution into one large matrix
//! multiplication by unrolling every receptive field into a row
//! (`im2col`), then compute `out = patches · weightᵀ` with the blocked,
//! register-tiled GEMM from `ops::matmul`. Trades memory for much better
//! cache behaviour; on the shapes the paper's models use it beats the
//! direct kernel in `ops::conv` as soon as the implied GEMM is non-trivial
//! (the dispatch in `ops::conv` picks the winner per shape).
//!
//! The backward pass is lowered the same way:
//!
//! * `dW = doutᵀ_rows · patches`   (one `matmul_tn`)
//! * `dpatches = dout_rows · W`    (one `matmul`), then scattered back to
//!   the input layout by [`col2im`] (the exact adjoint of [`im2col`]).

use crate::ops::conv::ConvGrads;
use crate::ops::matmul::{matmul_into, matmul_nt_into, matmul_tn_into};
use crate::par;
use crate::scratch::Scratch;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Unroll `input (N,C,H,W)` into a patch matrix of shape
/// `(N*OH*OW, C*KH*KW)` for a stride-1 convolution with zero padding `pad`.
/// Out-of-bounds taps contribute zeros.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, pad: usize) -> Tensor {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let (oh, ow) = (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1);
    let mut out = vec![0.0f32; n * oh * ow * c * kh * kw];
    im2col_into(input, kh, kw, pad, &mut out);
    Tensor::from_vec(Shape::d2(n * oh * ow, c * kh * kw), out)
}

/// [`im2col`] into a caller-owned buffer (every slot is overwritten,
/// including the zero padding, so uninitialized scratch storage is fine).
pub fn im2col_into(input: &Tensor, kh: usize, kw: usize, pad: usize, out: &mut [f32]) {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    assert!(
        h + 2 * pad >= kh && w + 2 * pad >= kw,
        "kernel larger than padded input"
    );
    let (oh, ow) = (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1);
    let row_len = c * kh * kw;
    assert_eq!(out.len(), n * oh * ow * row_len, "im2col out length");
    let id = input.data();
    par::par_chunks_mut(out, oh * ow * row_len, |ni, chunk| {
        let ibase = ni * c * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let row = &mut chunk[(oy * ow + ox) * row_len..(oy * ow + ox + 1) * row_len];
                let mut k = 0;
                for ci in 0..c {
                    let icbase = ibase + ci * h * w;
                    for ky in 0..kh {
                        let iy = oy + ky;
                        for kx in 0..kw {
                            let ix = ox + kx;
                            row[k] = if iy >= pad && iy < h + pad && ix >= pad && ix < w + pad {
                                id[icbase + (iy - pad) * w + (ix - pad)]
                            } else {
                                0.0
                            };
                            k += 1;
                        }
                    }
                }
            }
        }
    });
}

/// Adjoint of [`im2col`]: scatter-add a patch-gradient matrix
/// `(N*OH*OW, C*KH*KW)` back into an input-shaped `(N,C,H,W)` tensor.
/// Parallel over batch items; within one item the scatter runs in a fixed
/// loop order, so the accumulation is deterministic.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    dpatches: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
) -> Tensor {
    let mut dinput = vec![0.0f32; n * c * h * w];
    col2im_into(dpatches, n, c, h, w, kh, kw, pad, &mut dinput);
    Tensor::from_vec(Shape::d4(n, c, h, w), dinput)
}

/// [`col2im`] into a caller-owned, **pre-zeroed** buffer (the scatter
/// accumulates).
#[allow(clippy::too_many_arguments)]
pub fn col2im_into(
    dpatches: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    dinput: &mut [f32],
) {
    let (oh, ow) = (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1);
    let row_len = c * kh * kw;
    assert_eq!(
        dpatches.shape().dims(),
        &[n * oh * ow, row_len],
        "col2im patch-matrix shape"
    );
    assert_eq!(dinput.len(), n * c * h * w, "col2im dinput length");
    let pd = dpatches.data();
    par::par_chunks_mut(dinput, c * h * w, |ni, dslice| {
        let rbase = ni * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let row = &pd[(rbase + oy * ow + ox) * row_len..][..row_len];
                let mut k = 0;
                for ci in 0..c {
                    let icbase = ci * h * w;
                    for ky in 0..kh {
                        let iy = oy + ky;
                        for kx in 0..kw {
                            let ix = ox + kx;
                            if iy >= pad && iy < h + pad && ix >= pad && ix < w + pad {
                                dslice[icbase + (iy - pad) * w + (ix - pad)] += row[k];
                            }
                            k += 1;
                        }
                    }
                }
            }
        }
    });
}

/// GEMM-backed convolution, numerically equivalent to [`crate::ops::conv2d`].
pub fn conv2d_im2col(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    conv2d_im2col_s(input, weight, bias, pad, &mut Scratch::new())
}

/// [`conv2d_im2col`] with every intermediate buffer (patch matrix, GEMM
/// product, output) served from a caller-owned [`Scratch`] arena — the
/// allocation-free training-step entry point. Bit-identical to the
/// allocating wrapper: buffer reuse never changes what is computed.
pub fn conv2d_im2col_s(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
    s: &mut Scratch,
) -> Tensor {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let [f, cw, kh, kw] = [
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ];
    assert_eq!(c, cw, "conv2d channel mismatch");
    assert_eq!(bias.numel(), f);
    let (oh, ow) = (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1);
    let rows = n * oh * ow;
    let row_len = c * kh * kw;

    let mut patches_buf = s.take_uninit(rows * row_len);
    im2col_into(input, kh, kw, pad, &mut patches_buf);
    let patches = Tensor::from_vec(Shape::d2(rows, row_len), patches_buf);
    // weight viewed as (F, C*KH*KW): patches (R, K) x weightᵀ -> (R, F).
    let mut wbuf = s.take_uninit(f * row_len);
    wbuf.copy_from_slice(weight.data());
    let wmat = Tensor::from_vec(Shape::d2(f, row_len), wbuf);
    let mut prod = s.take_uninit(rows * f); // (N*OH*OW, F)
    matmul_nt_into(&patches, &wmat, &mut prod);
    s.put_tensor(patches);
    s.put_tensor(wmat);

    // Transpose rows into NCHW order and add bias. `out` is taken while
    // `prod` is still live (they are the same length, so putting `prod`
    // first would hand its storage straight back as `out`).
    let pd = &prod[..];
    let bd = bias.data();
    let mut out = s.take_uninit(n * f * oh * ow);
    par::par_chunks_mut(&mut out, f * oh * ow, |ni, chunk| {
        let rbase = ni * oh * ow;
        for fi in 0..f {
            let b = bd[fi];
            for p in 0..oh * ow {
                chunk[fi * oh * ow + p] = pd[(rbase + p) * f + fi] + b;
            }
        }
    });
    s.put(prod);
    Tensor::from_vec(Shape::d4(n, f, oh, ow), out)
}

/// GEMM-backed convolution backward, numerically equivalent to
/// [`crate::ops::conv2d_backward`]'s direct loops but dominated by two
/// blocked GEMMs instead of branchy scatter nests.
pub fn conv2d_backward_im2col(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
) -> ConvGrads {
    conv2d_backward_im2col_s(input, weight, dout, pad, &mut Scratch::new())
}

/// [`conv2d_backward_im2col`] with all buffers — including the returned
/// gradient tensors — served from a caller-owned [`Scratch`] arena; callers
/// on the training hot path recycle the results with
/// [`Scratch::put_tensor`] once consumed.
pub fn conv2d_backward_im2col_s(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    pad: usize,
    s: &mut Scratch,
) -> ConvGrads {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let [f, _, kh, kw] = [
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ];
    let (oh, ow) = (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1);
    assert_eq!(
        dout.shape().dims(),
        &[n, f, oh, ow],
        "conv2d_backward dout shape"
    );
    let rows = n * oh * ow;
    let row_len = c * kh * kw;

    // dout (N,F,OH,OW) -> row layout (N*OH*OW, F), inverse of the forward
    // output transpose.
    let dd = dout.data();
    let mut drows_buf = s.take_uninit(rows * f);
    par::par_chunks_mut(&mut drows_buf, oh * ow * f, |ni, chunk| {
        let dbase = ni * f * oh * ow;
        for p in 0..oh * ow {
            let dst = &mut chunk[p * f..(p + 1) * f];
            for (fi, v) in dst.iter_mut().enumerate() {
                *v = dd[dbase + fi * oh * ow + p];
            }
        }
    });
    let drows = Tensor::from_vec(Shape::d2(rows, f), drows_buf);

    // dbias: column sums of dout rows, fixed (row-major) reduction order.
    let mut dbias = s.take(f);
    for r in 0..rows {
        let row = &drows.data()[r * f..(r + 1) * f];
        for (b, &g) in dbias.iter_mut().zip(row) {
            *b += g;
        }
    }

    let mut patches_buf = s.take_uninit(rows * row_len);
    im2col_into(input, kh, kw, pad, &mut patches_buf);
    let patches = Tensor::from_vec(Shape::d2(rows, row_len), patches_buf);
    // dW (F, K) = doutᵀ_rows · patches.
    let mut dw_buf = s.take_uninit(f * row_len);
    matmul_tn_into(&drows, &patches, &mut dw_buf);
    let dweight = Tensor::from_vec(Shape::d4(f, c, kh, kw), dw_buf);
    // dpatches (R, K) = dout_rows · W.
    let mut wbuf = s.take_uninit(f * row_len);
    wbuf.copy_from_slice(weight.data());
    let wmat = Tensor::from_vec(Shape::d2(f, row_len), wbuf);
    let mut dpatches_buf = s.take_uninit(rows * row_len);
    matmul_into(&drows, &wmat, &mut dpatches_buf);
    let dpatches = Tensor::from_vec(Shape::d2(rows, row_len), dpatches_buf);
    s.put_tensor(patches);
    s.put_tensor(wmat);
    s.put_tensor(drows);
    let mut dinput_buf = s.take(n * c * h * w);
    col2im_into(&dpatches, n, c, h, w, kh, kw, pad, &mut dinput_buf);
    s.put_tensor(dpatches);

    ConvGrads {
        dinput: Tensor::from_vec(Shape::d4(n, c, h, w), dinput_buf),
        dweight,
        dbias: Tensor::from_vec(Shape::d1(f), dbias),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::{conv2d_backward_direct, conv2d_direct};
    use crate::rng::DetRng;

    #[test]
    fn im2col_known_values() {
        // 1x1x3x3 ramp, 2x2 kernel, no padding: 4 patches of 4 taps.
        let input = Tensor::from_fn(Shape::d4(1, 1, 3, 3), |i| i as f32);
        let p = im2col(&input, 2, 2, 0);
        assert_eq!(p.shape().dims(), &[4, 4]);
        assert_eq!(&p.data()[0..4], &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(&p.data()[12..16], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let input = Tensor::full(Shape::d4(1, 1, 2, 2), 1.0);
        let p = im2col(&input, 3, 3, 1);
        assert_eq!(p.shape().dims(), &[4, 9]);
        // Top-left patch: only the 2x2 bottom-right of the kernel hits data.
        let row0 = &p.data()[0..9];
        assert_eq!(row0.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), p> == <x, col2im(p)> for any p: the defining property
        // of an adjoint, checked exactly on small integers.
        let input = Tensor::from_fn(Shape::d4(1, 2, 3, 3), |i| (i % 7) as f32);
        let patches = im2col(&input, 2, 2, 1);
        let p = Tensor::from_fn(patches.shape().clone(), |i| ((i * 3) % 5) as f32);
        let lhs: f32 = patches
            .data()
            .iter()
            .zip(p.data())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&p, 1, 2, 3, 3, 2, 2, 1);
        let rhs: f32 = input
            .data()
            .iter()
            .zip(back.data())
            .map(|(a, b)| a * b)
            .sum();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn matches_direct_conv_exactly_shaped() {
        let mut rng = DetRng::seed_from_u64(1);
        for (n, c, h, w, f, k, pad) in [
            (2, 3, 8, 8, 5, 3, 1),
            (1, 1, 5, 7, 2, 3, 0),
            (3, 4, 6, 6, 8, 1, 0),
            (1, 2, 4, 4, 3, 3, 2),
        ] {
            let input = Tensor::randn(Shape::d4(n, c, h, w), 1.0, &mut rng);
            let weight = Tensor::randn(Shape::d4(f, c, k, k), 0.5, &mut rng);
            let bias = Tensor::randn(Shape::d1(f), 0.5, &mut rng);
            let direct = conv2d_direct(&input, &weight, &bias, pad);
            let gemm = conv2d_im2col(&input, &weight, &bias, pad);
            assert_eq!(direct.shape(), gemm.shape());
            for (i, (a, b)) in direct.data().iter().zip(gemm.data()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-4,
                    "({n},{c},{h},{w},{f},{k},{pad}) idx {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn backward_matches_direct_backend() {
        let mut rng = DetRng::seed_from_u64(3);
        for (n, c, h, w, f, k, pad) in [
            (2, 3, 8, 8, 5, 3, 1),
            (1, 1, 5, 7, 2, 3, 0),
            (3, 4, 6, 6, 8, 1, 0),
        ] {
            let input = Tensor::randn(Shape::d4(n, c, h, w), 1.0, &mut rng);
            let weight = Tensor::randn(Shape::d4(f, c, k, k), 0.5, &mut rng);
            let oh = h + 2 * pad - k + 1;
            let ow = w + 2 * pad - k + 1;
            let dout = Tensor::randn(Shape::d4(n, f, oh, ow), 1.0, &mut rng);
            let a = conv2d_backward_direct(&input, &weight, &dout, pad);
            let b = conv2d_backward_im2col(&input, &weight, &dout, pad);
            for (what, x, y) in [
                ("dinput", &a.dinput, &b.dinput),
                ("dweight", &a.dweight, &b.dweight),
                ("dbias", &a.dbias, &b.dbias),
            ] {
                assert_eq!(x.shape(), y.shape());
                for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
                    assert!(
                        (p - q).abs() < 1e-3,
                        "({n},{c},{h},{w},{f},{k},{pad}) {what}[{i}]: {p} vs {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let mut rng = DetRng::seed_from_u64(2);
        let input = Tensor::randn(Shape::d4(4, 3, 10, 10), 1.0, &mut rng);
        let weight = Tensor::randn(Shape::d4(6, 3, 3, 3), 0.5, &mut rng);
        let bias = Tensor::zeros(Shape::d1(6));
        let a = conv2d_im2col(&input, &weight, &bias, 1);
        let b = conv2d_im2col(&input, &weight, &bias, 1);
        assert_eq!(a.data(), b.data());
    }
}
