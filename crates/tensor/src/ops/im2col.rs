//! im2col convolution backend.
//!
//! The classic HPC formulation: lower the convolution into one large matrix
//! multiplication by unrolling every receptive field into a row
//! (`im2col`), then compute `out = patches · weightᵀ`. Trades memory for
//! the much better cache behaviour of GEMM; on larger shapes it beats the
//! direct kernel in `ops::conv`, and `conv2d_im2col` is bit-compatible in
//! shape and numerically equivalent (verified by tests against the direct
//! implementation).

use crate::ops::matmul::matmul_nt;
use crate::shape::Shape;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Unroll `input (N,C,H,W)` into a patch matrix of shape
/// `(N*OH*OW, C*KH*KW)` for a stride-1 convolution with zero padding `pad`.
/// Out-of-bounds taps contribute zeros.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, pad: usize) -> Tensor {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    assert!(
        h + 2 * pad >= kh && w + 2 * pad >= kw,
        "kernel larger than padded input"
    );
    let (oh, ow) = (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1);
    let row_len = c * kh * kw;
    let id = input.data();
    let mut out = vec![0.0f32; n * oh * ow * row_len];
    out.par_chunks_mut(oh * ow * row_len)
        .enumerate()
        .for_each(|(ni, chunk)| {
            let ibase = ni * c * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = &mut chunk[(oy * ow + ox) * row_len..(oy * ow + ox + 1) * row_len];
                    let mut k = 0;
                    for ci in 0..c {
                        let icbase = ibase + ci * h * w;
                        for ky in 0..kh {
                            let iy = oy + ky;
                            for kx in 0..kw {
                                let ix = ox + kx;
                                row[k] = if iy >= pad && iy < h + pad && ix >= pad && ix < w + pad {
                                    id[icbase + (iy - pad) * w + (ix - pad)]
                                } else {
                                    0.0
                                };
                                k += 1;
                            }
                        }
                    }
                }
            }
        });
    Tensor::from_vec(Shape::d2(n * oh * ow, row_len), out)
}

/// GEMM-backed convolution, numerically equivalent to [`crate::ops::conv2d`].
pub fn conv2d_im2col(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    let [n, c, h, w] = [
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ];
    let [f, cw, kh, kw] = [
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ];
    assert_eq!(c, cw, "conv2d channel mismatch");
    assert_eq!(bias.numel(), f);
    let (oh, ow) = (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1);

    let patches = im2col(input, kh, kw, pad);
    // weight viewed as (F, C*KH*KW): patches (R, K) x weightᵀ -> (R, F).
    let wmat = weight.clone().reshape(Shape::d2(f, c * kh * kw));
    let prod = matmul_nt(&patches, &wmat); // (N*OH*OW, F)

    // Transpose rows into NCHW order and add bias.
    let pd = prod.data();
    let bd = bias.data();
    let mut out = vec![0.0f32; n * f * oh * ow];
    out.par_chunks_mut(f * oh * ow)
        .enumerate()
        .for_each(|(ni, chunk)| {
            let rbase = ni * oh * ow;
            for fi in 0..f {
                let b = bd[fi];
                for p in 0..oh * ow {
                    chunk[fi * oh * ow + p] = pd[(rbase + p) * f + fi] + b;
                }
            }
        });
    Tensor::from_vec(Shape::d4(n, f, oh, ow), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::conv2d;
    use crate::rng::DetRng;

    #[test]
    fn im2col_known_values() {
        // 1x1x3x3 ramp, 2x2 kernel, no padding: 4 patches of 4 taps.
        let input = Tensor::from_fn(Shape::d4(1, 1, 3, 3), |i| i as f32);
        let p = im2col(&input, 2, 2, 0);
        assert_eq!(p.shape().dims(), &[4, 4]);
        assert_eq!(&p.data()[0..4], &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(&p.data()[12..16], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let input = Tensor::full(Shape::d4(1, 1, 2, 2), 1.0);
        let p = im2col(&input, 3, 3, 1);
        assert_eq!(p.shape().dims(), &[4, 9]);
        // Top-left patch: only the 2x2 bottom-right of the kernel hits data.
        let row0 = &p.data()[0..9];
        assert_eq!(row0.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn matches_direct_conv_exactly_shaped() {
        let mut rng = DetRng::seed_from_u64(1);
        for (n, c, h, w, f, k, pad) in [
            (2, 3, 8, 8, 5, 3, 1),
            (1, 1, 5, 7, 2, 3, 0),
            (3, 4, 6, 6, 8, 1, 0),
            (1, 2, 4, 4, 3, 3, 2),
        ] {
            let input = Tensor::randn(Shape::d4(n, c, h, w), 1.0, &mut rng);
            let weight = Tensor::randn(Shape::d4(f, c, k, k), 0.5, &mut rng);
            let bias = Tensor::randn(Shape::d1(f), 0.5, &mut rng);
            let direct = conv2d(&input, &weight, &bias, pad);
            let gemm = conv2d_im2col(&input, &weight, &bias, pad);
            assert_eq!(direct.shape(), gemm.shape());
            for (i, (a, b)) in direct.data().iter().zip(gemm.data()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-4,
                    "({n},{c},{h},{w},{f},{k},{pad}) idx {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let mut rng = DetRng::seed_from_u64(2);
        let input = Tensor::randn(Shape::d4(4, 3, 10, 10), 1.0, &mut rng);
        let weight = Tensor::randn(Shape::d4(6, 3, 3, 3), 0.5, &mut rng);
        let bias = Tensor::zeros(Shape::d1(6));
        let a = conv2d_im2col(&input, &weight, &bias, 1);
        let b = conv2d_im2col(&input, &weight, &bias, 1);
        assert_eq!(a.data(), b.data());
    }
}
