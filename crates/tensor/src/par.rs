//! Minimal deterministic data-parallel runtime (no external dependencies).
//!
//! A lazily-spawned, persistent worker pool executes indexed task batches:
//! [`run`] hands each index in `0..n_tasks` to exactly one thread, with the
//! submitting thread participating. Determinism rule: tasks must write only
//! to disjoint data decided by their index, and every per-element reduction
//! must happen inside a single task with a fixed-order loop. Under that
//! rule the result is bit-identical to serial execution regardless of how
//! indices are interleaved across threads.
//!
//! The pool is intentionally simple:
//! * one batch in flight at a time — a second submitter (or a task that
//!   itself calls [`run`], e.g. a parallel experiment cell whose kernels
//!   are parallel too) falls back to inline serial execution, so nesting
//!   can never deadlock;
//! * work is claimed from an atomic counter, so load balancing is dynamic
//!   while output placement stays index-addressed and deterministic;
//! * on single-core machines (`available_parallelism() == 1`) no worker
//!   threads are spawned and every batch runs inline.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A `*const dyn Fn(usize)` that may cross thread boundaries. Validity is
/// guaranteed by [`run`]: the submitter does not return until every worker
/// has finished the batch, so the borrow outlives all uses.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for JobPtr {}

struct PoolState {
    generation: u64,
    job: Option<JobPtr>,
    /// Workers still running the current generation.
    workers_left: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    next_task: AtomicUsize,
    n_tasks: AtomicUsize,
    n_workers: usize,
}

/// Set while the pool is executing a batch; a concurrent submitter runs
/// its batch inline instead of queueing (prevents nested deadlock).
static BUSY: AtomicBool = AtomicBool::new(false);
static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on dedicated pool worker threads: nested `run` calls from
    /// inside a task body always execute inline.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Worker threads beyond the submitting thread.
pub fn extra_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(0)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let n_workers = extra_workers();
        Pool {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                workers_left: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next_task: AtomicUsize::new(0),
            n_tasks: AtomicUsize::new(0),
            n_workers,
        }
    })
}

fn spawn_workers(p: &'static Pool) {
    static SPAWNED: AtomicBool = AtomicBool::new(false);
    if SPAWNED.swap(true, Ordering::SeqCst) {
        return;
    }
    for w in 0..p.n_workers {
        std::thread::Builder::new()
            .name(format!("dlion-par-{w}"))
            .spawn(move || {
                IS_POOL_WORKER.with(|f| f.set(true));
                let mut seen_gen = 0u64;
                loop {
                    let job = {
                        let mut st = p.state.lock().expect("pool mutex");
                        while st.generation == seen_gen {
                            st = p.work_cv.wait(st).expect("pool condvar");
                        }
                        seen_gen = st.generation;
                        st.job.expect("generation advanced without a job")
                    };
                    let f = unsafe { &*job.0 };
                    drain(p, f);
                    let mut st = p.state.lock().expect("pool mutex");
                    st.workers_left -= 1;
                    if st.workers_left == 0 {
                        p.done_cv.notify_all();
                    }
                }
            })
            .expect("spawn pool worker");
    }
}

/// Claim and execute tasks until the batch counter is exhausted.
fn drain(p: &Pool, f: &(dyn Fn(usize) + Sync)) {
    let n = p.n_tasks.load(Ordering::Acquire);
    loop {
        let i = p.next_task.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        f(i);
    }
}

/// Execute `f(0), f(1), ..., f(n_tasks - 1)` across the pool (or inline when
/// the pool is busy, nested, or the machine is single-core). Blocks until
/// every task has completed.
pub fn run(n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    let serial = || {
        for i in 0..n_tasks {
            f(i);
        }
    };
    if n_tasks == 1 || extra_workers() == 0 || IS_POOL_WORKER.with(|w| w.get()) {
        return serial();
    }
    if BUSY
        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        return serial();
    }
    let p = pool();
    spawn_workers(p);
    // Publish the batch: counters first, then the generation bump that
    // wakes workers (the mutex orders both for every waiter).
    let erased: &(dyn Fn(usize) + Sync) = f;
    let job = JobPtr(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(erased)
    });
    {
        let mut st = p.state.lock().expect("pool mutex");
        p.next_task.store(0, Ordering::Relaxed);
        p.n_tasks.store(n_tasks, Ordering::Release);
        st.job = Some(job);
        st.generation += 1;
        st.workers_left = p.n_workers;
        p.work_cv.notify_all();
    }
    // The submitter is a full participant.
    drain(p, f);
    let mut st = p.state.lock().expect("pool mutex");
    while st.workers_left > 0 {
        st = p.done_cv.wait(st).expect("pool condvar");
    }
    st.job = None;
    drop(st);
    BUSY.store(false, Ordering::Release);
}

/// Raw pointer wrapper so task closures (which must be `Sync`) can carry a
/// mutable base pointer; soundness comes from tasks touching disjoint
/// index-derived regions only.
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessed through a method so closures capture the `Sync` wrapper,
    /// not the raw pointer field (2021-edition disjoint capture).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Parallel `chunks_mut(chunk).enumerate().for_each(f)`: each task gets one
/// disjoint chunk, identified by its chunk index.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let len = data.len();
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(chunk);
    let base = SendPtr(data.as_mut_ptr());
    run(n_chunks, &|i| {
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // Disjoint by construction: chunk i covers [i*chunk, (i+1)*chunk).
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, slice);
    });
}

/// Parallel lock-step chunking of two slices: task `i` receives chunk `i`
/// of `a` (size `chunk_a`) and chunk `i` of `b` (size `chunk_b`). The two
/// slices must describe the same number of chunks.
pub fn par_chunks2_mut<T, U, F>(a: &mut [T], chunk_a: usize, b: &mut [U], chunk_b: usize, f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(chunk_a > 0 && chunk_b > 0, "chunk sizes must be positive");
    let n_chunks = a.len().div_ceil(chunk_a);
    assert_eq!(
        n_chunks,
        b.len().div_ceil(chunk_b),
        "slices disagree on chunk count"
    );
    if n_chunks == 0 {
        return;
    }
    let (la, lb) = (a.len(), b.len());
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    run(n_chunks, &|i| {
        let (sa, sb) = (i * chunk_a, i * chunk_b);
        let (ea, eb) = ((sa + chunk_a).min(la), (sb + chunk_b).min(lb));
        let ca = unsafe { std::slice::from_raw_parts_mut(pa.get().add(sa), ea - sa) };
        let cb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(sb), eb - sb) };
        f(i, ca, cb);
    });
}

/// Parallel map over a slice with results collected in input (index) order,
/// independent of execution interleaving.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let base = SendPtr(out.as_mut_ptr());
    run(items.len(), &|i| {
        let v = f(&items[i]);
        // Each task writes exactly one slot: its own index.
        unsafe { *base.get().add(i) = Some(v) };
    });
    out.into_iter()
        .map(|o| o.expect("pool task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_index_once() {
        let n = 997;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run(n, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_matches_serial() {
        let mut a: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let mut b = a.clone();
        par_chunks_mut(&mut a, 37, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = *v * 2.0 + (ci * 37 + j) as f32;
            }
        });
        b.chunks_mut(37).enumerate().for_each(|(ci, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = *v * 2.0 + (ci * 37 + j) as f32;
            }
        });
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..2048).collect();
        let ys = par_map(&xs, |&x| x * x);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, i * i);
        }
    }

    #[test]
    fn nested_run_falls_back_to_serial() {
        let total = AtomicUsize::new(0);
        run(8, &|_| {
            run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_and_single() {
        run(0, &|_| panic!("no tasks to run"));
        let called = AtomicUsize::new(0);
        run(1, &|i| {
            assert_eq!(i, 0);
            called.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(called.load(Ordering::Relaxed), 1);
        let empty: Vec<u8> = vec![];
        assert!(par_map(&empty, |_| 0u8).is_empty());
    }
}
