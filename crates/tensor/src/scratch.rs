//! Per-worker scratch arena: recycled `f32` buffers for the training step.
//!
//! The simulated trainer runs `forward_backward` once per virtual iteration;
//! without reuse every activation, im2col patch matrix and gradient is a
//! fresh `Vec<f32>` allocation. [`Scratch`] is a size-bucketed free list:
//! [`Scratch::take`] hands out a zeroed buffer of the requested length
//! (reusing a previously returned one when available) and [`Scratch::put`]
//! returns it for the next iteration.
//!
//! Ownership story: each simulated worker owns exactly one `Scratch`; layers
//! never hold scratch buffers across calls — a buffer taken inside
//! `forward`/`backward` is either returned with `put` before the call exits
//! or handed back to the caller as part of a result tensor (in which case it
//! re-enters the arena when the caller recycles that tensor). The arena is
//! deliberately not thread-safe: it lives and dies with one worker, which is
//! also what keeps reuse deterministic.

use crate::tensor::Tensor;
use std::collections::HashMap;

/// Size-bucketed pool of reusable `Vec<f32>` buffers.
#[derive(Default)]
pub struct Scratch {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    /// Buffers handed out since construction (diagnostics only).
    taken: u64,
    /// Buffers served from the pool rather than freshly allocated.
    reused: u64,
}

impl Scratch {
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Get a zeroed buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.taken += 1;
        if let Some(mut buf) = self.buckets.get_mut(&len).and_then(|b| b.pop()) {
            self.reused += 1;
            buf.iter_mut().for_each(|v| *v = 0.0);
            buf
        } else {
            vec![0.0; len]
        }
    }

    /// Get a buffer of `len` elements without zeroing (for outputs that are
    /// fully overwritten, e.g. GEMM results).
    pub fn take_uninit(&mut self, len: usize) -> Vec<f32> {
        self.taken += 1;
        if let Some(buf) = self.buckets.get_mut(&len).and_then(|b| b.pop()) {
            self.reused += 1;
            buf
        } else {
            vec![0.0; len]
        }
    }

    /// Get a zeroed tensor of the given shape (storage from the pool).
    pub fn take_tensor(&mut self, shape: impl Into<crate::Shape>) -> Tensor {
        let shape = shape.into();
        let buf = self.take(shape.numel());
        Tensor::from_vec(shape, buf)
    }

    /// Return a buffer to the pool.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.is_empty() {
            return;
        }
        self.buckets.entry(buf.len()).or_default().push(buf);
    }

    /// Recycle a whole tensor's storage.
    pub fn put_tensor(&mut self, t: Tensor) {
        self.put(t.into_data());
    }

    /// Fraction of `take` calls served from the pool; 0.0 before any call.
    pub fn reuse_ratio(&self) -> f64 {
        if self.taken == 0 {
            0.0
        } else {
            self.reused as f64 / self.taken as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_storage() {
        let mut s = Scratch::new();
        let mut a = s.take(128);
        a[0] = 7.0;
        let ptr = a.as_ptr();
        s.put(a);
        let b = s.take(128);
        assert_eq!(b.as_ptr(), ptr, "same allocation must come back");
        assert!(b.iter().all(|&v| v == 0.0), "reused buffers are zeroed");
        assert!(s.reuse_ratio() > 0.0);
    }

    #[test]
    fn different_sizes_do_not_mix() {
        let mut s = Scratch::new();
        s.put(vec![1.0; 64]);
        let b = s.take(32);
        assert_eq!(b.len(), 32);
        let c = s.take(64);
        assert_eq!(c.len(), 64);
    }

    #[test]
    fn take_uninit_keeps_len() {
        let mut s = Scratch::new();
        s.put(vec![3.0; 16]);
        let b = s.take_uninit(16);
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn tensor_roundtrip() {
        let mut s = Scratch::new();
        let t = Tensor::full(crate::Shape::d2(4, 4), 2.0);
        s.put_tensor(t);
        let b = s.take(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&v| v == 0.0));
    }
}
