//! # dlion-tensor
//!
//! Dense/sparse tensor math substrate for the DLion reproduction.
//!
//! This crate provides everything the deep-learning stack and the DLion
//! gradient-exchange machinery need from a numerics library:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with elementwise and
//!   BLAS-like operations (parallelized over the in-tree deterministic
//!   thread pool [`par`] where it pays off, with deterministic reductions
//!   so simulations are bit-reproducible),
//! * [`ops`] — matmul, 2-D convolution (incl. depthwise), max-pooling and
//!   activation kernels with hand-written backward passes,
//! * [`SparseVec`] — the sparse gradient representation exchanged between
//!   workers, including the *Max N* top-magnitude selection primitive at the
//!   heart of DLion's per-link prioritized gradient exchange (§3.3 of the
//!   paper),
//! * [`stats`] — small statistics helpers (mean/std, linear regression used
//!   by the LBS controller's compute profiler, 95 % confidence intervals),
//! * [`DetRng`] — a deterministic, seedable RNG with the distributions the
//!   workloads need (uniform, normal via Box–Muller, shuffling).
//!
//! Nothing in this crate knows about workers, networks or training loops;
//! it is a pure math layer.

pub mod ops;
pub mod par;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod sparse;
pub mod stats;
pub mod tensor;

pub use rng::DetRng;
pub use scratch::Scratch;

/// Which kernel algorithms this build routes the model through: `"blocked"`
/// normally, `"seed"` under the `seed-kernels` feature (pre-optimization
/// row-wise loops; used by the bench harness for before/after numbers).
pub fn kernel_backend() -> &'static str {
    if cfg!(feature = "seed-kernels") {
        "seed"
    } else {
        "blocked"
    }
}
pub use shape::Shape;
pub use sparse::SparseVec;
pub use tensor::Tensor;

/// Deterministic parallel sum: chunks are reduced in parallel but combined
/// in a fixed (index) order, so results do not depend on thread scheduling.
///
/// This matters because the cluster simulator must be bit-reproducible for a
/// given seed: figure regeneration and tests rely on it.
pub fn deterministic_sum(xs: &[f32]) -> f32 {
    const CHUNK: usize = 4096;
    if xs.len() <= CHUNK {
        return xs.iter().sum();
    }
    let n_chunks = xs.len().div_ceil(CHUNK);
    let mut partials = vec![0.0f32; n_chunks];
    // One task per chunk; each writes only its own slot, so the combine
    // below always sees partials in index order.
    par::par_chunks_mut(&mut partials, 1, |i, slot| {
        let start = i * CHUNK;
        let end = (start + CHUNK).min(xs.len());
        slot[0] = xs[start..end].iter().sum();
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sum_matches_serial() {
        let xs: Vec<f32> = (0..100_000).map(|i| (i as f32 * 0.001).sin()).collect();
        let serial: f32 = {
            // Same chunking as the parallel path, applied serially.
            let partials: Vec<f32> = xs.chunks(4096).map(|c| c.iter().sum::<f32>()).collect();
            partials.iter().sum()
        };
        let parallel = deterministic_sum(&xs);
        assert_eq!(serial, parallel, "parallel sum must be bit-identical");
    }

    #[test]
    fn deterministic_sum_small_input() {
        assert_eq!(deterministic_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(deterministic_sum(&[]), 0.0);
    }

    #[test]
    fn deterministic_sum_is_stable_across_calls() {
        let xs: Vec<f32> = (0..50_000).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let a = deterministic_sum(&xs);
        let b = deterministic_sum(&xs);
        assert_eq!(a, b);
    }
}
