//! Property-based tests for the tensor substrate's core invariants.

use dlion_tensor::ops::{matmul, matmul_nt, matmul_tn};
use dlion_tensor::sparse::{kth_largest_abs, max_n_select, n_for_budget};
use dlion_tensor::stats::linear_fit;
use dlion_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Max N selects exactly the entries with |v| >= (1 - N/100) * max|v|.
    #[test]
    fn max_n_threshold_semantics(dense in finite_vec(256), n in 0.1f64..100.0) {
        let sel = max_n_select(&dense, n);
        let max = dense.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let thr = ((1.0 - n / 100.0) * max as f64) as f32;
        for (&i, &v) in sel.indices.iter().zip(&sel.values) {
            prop_assert_eq!(dense[i as usize], v);
            if n < 100.0 {
                prop_assert!(v.abs() >= thr, "selected value below threshold");
            }
        }
        // Nothing above threshold is missed (non-zero entries).
        if n < 100.0 {
            for (i, &v) in dense.iter().enumerate() {
                if v != 0.0 && v.abs() >= thr {
                    prop_assert!(sel.indices.binary_search(&(i as u32)).is_ok(),
                        "entry {i} ({v}) above threshold not selected");
                }
            }
        }
    }

    /// Selection size is monotone non-decreasing in N.
    #[test]
    fn max_n_monotone(dense in finite_vec(128)) {
        let mut prev = 0usize;
        for n in [1.0, 10.0, 25.0, 50.0, 75.0, 100.0] {
            let sel = max_n_select(&dense, n);
            prop_assert!(sel.nnz() >= prev);
            prev = sel.nnz();
        }
    }

    /// Budgeted selection never exceeds the entry budget (when budget >= 1)
    /// and keeps the largest-magnitude entries.
    #[test]
    fn budget_respected_and_greedy(dense in finite_vec(128), budget in 1usize..64) {
        let (_, sel) = n_for_budget(&dense, budget, 0.85);
        prop_assert!(sel.nnz() <= budget);
        // Every selected magnitude >= every unselected magnitude (allowing ties).
        let selected: std::collections::HashSet<u32> = sel.indices.iter().copied().collect();
        let min_sel = sel.values.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        if sel.nnz() > 0 && sel.nnz() == budget {
            for (i, &v) in dense.iter().enumerate() {
                if !selected.contains(&(i as u32)) {
                    prop_assert!(v.abs() <= min_sel + 1e-6,
                        "unselected {v} larger than selected min {min_sel}");
                }
            }
        }
    }

    /// kth_largest_abs agrees with a sort-based oracle.
    #[test]
    fn kth_largest_matches_sort(dense in finite_vec(128), k in 1usize..64) {
        let got = kth_largest_abs(&dense, k);
        let mut abs: Vec<f32> = dense.iter().map(|x| x.abs()).collect();
        abs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let expect = abs[(k - 1).min(abs.len() - 1)];
        prop_assert_eq!(got, expect);
    }

    /// Scatter-add followed by subtraction recovers zero where selected.
    #[test]
    fn sparse_roundtrip(dense in finite_vec(128), n in 1.0f64..100.0) {
        let sel = max_n_select(&dense, n);
        let mut acc = dense.clone();
        sel.add_into(&mut acc, -1.0);
        for (&i, _) in sel.indices.iter().zip(&sel.values) {
            prop_assert!(acc[i as usize].abs() < 1e-4);
        }
    }

    /// Linear regression exactly recovers noiseless lines.
    #[test]
    fn linear_fit_recovers_line(a in -50.0f64..50.0, b in -10.0f64..10.0,
                                xs in prop::collection::vec(-100.0f64..100.0, 3..32)) {
        // Need x-variance; perturb deterministically if degenerate.
        let mut xs = xs;
        xs[0] += 1.0;
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let (ga, gb) = linear_fit(&xs, &ys);
        prop_assert!((ga - a).abs() < 1e-6 * (1.0 + a.abs()), "intercept {ga} vs {a}");
        prop_assert!((gb - b).abs() < 1e-6 * (1.0 + b.abs()), "slope {gb} vs {b}");
    }

    /// (A·B)ᵀ-free identities: matmul_nt(A, B) == A·Bᵀ and matmul_tn(A, B) == Aᵀ·B,
    /// checked via small random shapes against the plain matmul with explicit
    /// transposes.
    #[test]
    fn matmul_transpose_identities(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                                   seed in 0u64..1000) {
        let mut rng = dlion_tensor::DetRng::seed_from_u64(seed);
        let a = Tensor::randn(Shape::d2(m, k), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(k, n), 1.0, &mut rng);
        let bt = {
            let mut t = Tensor::zeros(Shape::d2(n, k));
            for i in 0..k { for j in 0..n { *t.at_mut(&[j, i]) = b.at(&[i, j]); } }
            t
        };
        let at = {
            let mut t = Tensor::zeros(Shape::d2(k, m));
            for i in 0..m { for j in 0..k { *t.at_mut(&[j, i]) = a.at(&[i, j]); } }
            t
        };
        let c = matmul(&a, &b);
        let c_nt = matmul_nt(&a, &bt);
        let c_tn = matmul_tn(&at, &b);
        for i in 0..m * n {
            prop_assert!((c.data()[i] - c_nt.data()[i]).abs() < 1e-4);
            prop_assert!((c.data()[i] - c_tn.data()[i]).abs() < 1e-4);
        }
    }

    /// Shape offsets are a bijection onto 0..numel.
    #[test]
    fn shape_offsets_bijective(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5) {
        let s = Shape(vec![d0, d1, d2]);
        let mut seen = vec![false; s.numel()];
        for i in 0..d0 { for j in 0..d1 { for k in 0..d2 {
            let o = s.offset(&[i, j, k]);
            prop_assert!(!seen[o], "offset collision");
            seen[o] = true;
        }}}
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// axpy is linear: (x + a*y) + b*y == x + (a+b)*y.
    #[test]
    fn axpy_linearity(xs in finite_vec(64), a in -2.0f32..2.0, b in -2.0f32..2.0) {
        let n = xs.len();
        let x = Tensor::from_vec(Shape::d1(n), xs.clone());
        let y = Tensor::from_fn(Shape::d1(n), |i| (i as f32 * 0.37).sin());
        let mut lhs = x.clone();
        lhs.axpy(a, &y);
        lhs.axpy(b, &y);
        let mut rhs = x.clone();
        rhs.axpy(a + b, &y);
        for i in 0..n {
            prop_assert!((lhs.data()[i] - rhs.data()[i]).abs() < 1e-3);
        }
    }
}
