//! Property-based tests for the tensor substrate's core invariants.
//!
//! Each test sweeps many deterministic pseudo-random cases (seeded
//! `DetRng`), replacing the external proptest dependency: same invariants,
//! reproducible offline.

use dlion_tensor::ops::{
    matmul, matmul_into, matmul_naive, matmul_nt, matmul_nt_into, matmul_tn, matmul_tn_into,
};
use dlion_tensor::sparse::{kth_largest_abs, max_n_select, n_for_budget};
use dlion_tensor::stats::linear_fit;
use dlion_tensor::{DetRng, Shape, Tensor};

fn finite_vec(rng: &mut DetRng, max_len: usize) -> Vec<f32> {
    let len = 1 + rng.index(max_len - 1);
    (0..len)
        .map(|_| rng.uniform_range(-100.0, 100.0) as f32)
        .collect()
}

fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    Tensor::from_fn(Shape::d2(n, m), |f| a.at(&[f % m, f / m]))
}

/// Max N selects exactly the entries with |v| >= (1 - N/100) * max|v|.
#[test]
fn max_n_threshold_semantics() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(case);
        let dense = finite_vec(&mut rng, 256);
        let n = rng.uniform_range(0.1, 100.0);
        let sel = max_n_select(&dense, n);
        let max = dense.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let thr = ((1.0 - n / 100.0) * max as f64) as f32;
        for (&i, &v) in sel.indices.iter().zip(&sel.values) {
            assert_eq!(dense[i as usize], v);
            if n < 100.0 {
                assert!(
                    v.abs() >= thr,
                    "case {case}: selected value below threshold"
                );
            }
        }
        // Nothing above threshold is missed (non-zero entries).
        if n < 100.0 {
            for (i, &v) in dense.iter().enumerate() {
                if v != 0.0 && v.abs() >= thr {
                    assert!(
                        sel.indices.binary_search(&(i as u32)).is_ok(),
                        "case {case}: entry {i} ({v}) above threshold not selected"
                    );
                }
            }
        }
    }
}

/// Selection size is monotone non-decreasing in N.
#[test]
fn max_n_monotone() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(1000 + case);
        let dense = finite_vec(&mut rng, 128);
        let mut prev = 0usize;
        for n in [1.0, 10.0, 25.0, 50.0, 75.0, 100.0] {
            let sel = max_n_select(&dense, n);
            assert!(sel.nnz() >= prev, "case {case}: nnz not monotone in N");
            prev = sel.nnz();
        }
    }
}

/// Budgeted selection never exceeds the entry budget (when budget >= 1)
/// and keeps the largest-magnitude entries.
#[test]
fn budget_respected_and_greedy() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(2000 + case);
        let dense = finite_vec(&mut rng, 128);
        let budget = 1 + rng.index(63);
        let (_, sel) = n_for_budget(&dense, budget, 0.85);
        assert!(sel.nnz() <= budget, "case {case}: budget exceeded");
        let selected: std::collections::HashSet<u32> = sel.indices.iter().copied().collect();
        let min_sel = sel
            .values
            .iter()
            .map(|v| v.abs())
            .fold(f32::INFINITY, f32::min);
        if sel.nnz() > 0 && sel.nnz() == budget {
            for (i, &v) in dense.iter().enumerate() {
                if !selected.contains(&(i as u32)) {
                    assert!(
                        v.abs() <= min_sel + 1e-6,
                        "case {case}: unselected {v} larger than selected min {min_sel}"
                    );
                }
            }
        }
    }
}

/// kth_largest_abs agrees with a sort-based oracle.
#[test]
fn kth_largest_matches_sort() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(3000 + case);
        let dense = finite_vec(&mut rng, 128);
        let k = 1 + rng.index(63);
        let got = kth_largest_abs(&dense, k);
        let mut abs: Vec<f32> = dense.iter().map(|x| x.abs()).collect();
        abs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let expect = abs[(k - 1).min(abs.len() - 1)];
        assert_eq!(got, expect, "case {case}");
    }
}

/// Scatter-add followed by subtraction recovers zero where selected.
#[test]
fn sparse_roundtrip() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(4000 + case);
        let dense = finite_vec(&mut rng, 128);
        let n = rng.uniform_range(1.0, 100.0);
        let sel = max_n_select(&dense, n);
        let mut acc = dense.clone();
        sel.add_into(&mut acc, -1.0);
        for &i in sel.indices.iter() {
            assert!(acc[i as usize].abs() < 1e-4, "case {case}");
        }
    }
}

/// Linear regression exactly recovers noiseless lines.
#[test]
fn linear_fit_recovers_line() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(5000 + case);
        let a = rng.uniform_range(-50.0, 50.0);
        let b = rng.uniform_range(-10.0, 10.0);
        let len = 3 + rng.index(29);
        let mut xs: Vec<f64> = (0..len).map(|_| rng.uniform_range(-100.0, 100.0)).collect();
        // Need x-variance; perturb deterministically if degenerate.
        xs[0] += 1.0;
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let (ga, gb) = linear_fit(&xs, &ys);
        assert!(
            (ga - a).abs() < 1e-6 * (1.0 + a.abs()),
            "case {case}: intercept {ga} vs {a}"
        );
        assert!(
            (gb - b).abs() < 1e-6 * (1.0 + b.abs()),
            "case {case}: slope {gb} vs {b}"
        );
    }
}

/// The blocked kernels' central contract: `matmul`, `matmul_nt`, `matmul_tn`
/// and all `_into` variants are *bit-identical* (exact f32 equality) to the
/// naive `i,j,k` triple loop, across random shapes deliberately not
/// divisible by the MR=4 / NR=16 / MC=32 tile sizes.
#[test]
fn blocked_kernels_exactly_match_naive_reference() {
    for case in 0..96u64 {
        let mut rng = DetRng::seed_from_u64(6000 + case);
        // Bias shapes toward tile-boundary straddling: 1..70 hits every
        // residue mod 4/8/32.
        let m = 1 + rng.index(70);
        let k = 1 + rng.index(70);
        let n = 1 + rng.index(70);
        let a = Tensor::randn(Shape::d2(m, k), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(k, n), 1.0, &mut rng);
        let expect = matmul_naive(&a, &b);

        let c = matmul(&a, &b);
        assert_eq!(c.data(), expect.data(), "case {case}: matmul {m}x{k}x{n}");

        let bt = transpose(&b);
        let c_nt = matmul_nt(&a, &bt);
        assert_eq!(
            c_nt.data(),
            expect.data(),
            "case {case}: matmul_nt {m}x{k}x{n}"
        );

        let at = transpose(&a);
        let c_tn = matmul_tn(&at, &b);
        assert_eq!(
            c_tn.data(),
            expect.data(),
            "case {case}: matmul_tn {m}x{k}x{n}"
        );

        // _into twins write the same bits into caller-owned (stale) buffers.
        let mut buf = vec![f32::NAN; m * n];
        matmul_into(&a, &b, &mut buf);
        assert_eq!(buf, expect.data(), "case {case}: matmul_into");
        matmul_nt_into(&a, &bt, &mut buf);
        assert_eq!(buf, expect.data(), "case {case}: matmul_nt_into");
        matmul_tn_into(&at, &b, &mut buf);
        assert_eq!(buf, expect.data(), "case {case}: matmul_tn_into");
    }
}

/// Shape offsets are a bijection onto 0..numel.
#[test]
fn shape_offsets_bijective() {
    for case in 0..64u64 {
        let mut rng = DetRng::seed_from_u64(7000 + case);
        let (d0, d1, d2) = (1 + rng.index(4), 1 + rng.index(4), 1 + rng.index(4));
        let s = Shape(vec![d0, d1, d2]);
        let mut seen = vec![false; s.numel()];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let o = s.offset(&[i, j, k]);
                    assert!(!seen[o], "case {case}: offset collision");
                    seen[o] = true;
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "case {case}");
    }
}

/// axpy is linear: (x + a*y) + b*y == x + (a+b)*y.
#[test]
fn axpy_linearity() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(8000 + case);
        let xs = finite_vec(&mut rng, 64);
        let a = rng.uniform_range(-2.0, 2.0) as f32;
        let b = rng.uniform_range(-2.0, 2.0) as f32;
        let n = xs.len();
        let x = Tensor::from_vec(Shape::d1(n), xs);
        let y = Tensor::from_fn(Shape::d1(n), |i| (i as f32 * 0.37).sin());
        let mut lhs = x.clone();
        lhs.axpy(a, &y);
        lhs.axpy(b, &y);
        let mut rhs = x.clone();
        rhs.axpy(a + b, &y);
        for i in 0..n {
            assert!(
                (lhs.data()[i] - rhs.data()[i]).abs() < 1e-3,
                "case {case} idx {i}"
            );
        }
    }
}
