//! Benchmarks for the discrete-event substrate: event queue throughput and
//! transfer-time computation under schedules.

use criterion::{criterion_group, criterion_main, Criterion};
use dlion_simnet::{EventQueue, NetworkModel, PiecewiseConst};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                // Pseudo-random but deterministic times.
                let t = (i.wrapping_mul(2_654_435_761) % 100_000) as f64;
                q.schedule(t, i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc += e as u64;
            }
            black_box(acc)
        })
    });
}

fn bench_transfers(c: &mut Criterion) {
    c.bench_function("network_transfer_constant_bw", |b| {
        let mut net = NetworkModel::uniform(6, 50.0, 0.05);
        let mut t = 0.0;
        b.iter(|| {
            let tr = net.transfer(0, 1, 5_000_000.0, t);
            t = tr.depart; // keep time monotone
            black_box(tr)
        })
    });
    c.bench_function("network_transfer_stepped_bw", |b| {
        let mut net = NetworkModel::uniform(6, 50.0, 0.05);
        // 200 bandwidth steps to walk through.
        let steps: Vec<(f64, f64)> = (0..200)
            .map(|i| (i as f64 * 10.0, 20.0 + (i % 5) as f64 * 20.0))
            .collect();
        net.set_link(0, 1, PiecewiseConst::steps(steps));
        let mut t = 0.0;
        b.iter(|| {
            let tr = net.transfer(0, 1, 1_000_000.0, t);
            t = (tr.depart + 0.001).min(1800.0);
            black_box(tr)
        })
    });
}

fn bench_schedule_math(c: &mut Criterion) {
    let sched = PiecewiseConst::steps(
        (0..500)
            .map(|i| (i as f64 * 3.0, 10.0 + (i % 7) as f64))
            .collect(),
    );
    c.bench_function("schedule_value_at", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t = (t + 13.7) % 1500.0;
            black_box(sched.value_at(black_box(t)))
        })
    });
    c.bench_function("schedule_time_to_accumulate", |b| {
        b.iter(|| black_box(sched.time_to_accumulate(black_box(42.0), black_box(5_000.0))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_event_queue, bench_transfers, bench_schedule_math
);
criterion_main!(benches);
