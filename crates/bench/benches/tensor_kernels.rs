//! Microbenchmarks for the tensor kernels that dominate simulation cost:
//! matmul, convolution forward/backward, pooling and the loss.

use criterion::{criterion_group, criterion_main, Criterion};
use dlion_tensor::ops::{conv2d, conv2d_backward, conv2d_im2col, matmul, maxpool2, softmax_xent};
use dlion_tensor::{DetRng, Shape, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(1);
    let a = Tensor::randn(Shape::d2(64, 216), 1.0, &mut rng);
    let b = Tensor::randn(Shape::d2(216, 48), 1.0, &mut rng);
    c.bench_function("matmul_64x216x48", |bench| {
        bench.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(2);
    let input = Tensor::randn(Shape::d4(32, 6, 12, 12), 1.0, &mut rng);
    let weight = Tensor::randn(Shape::d4(12, 6, 3, 3), 0.3, &mut rng);
    let bias = Tensor::zeros(Shape::d1(12));
    c.bench_function("conv2d_fwd_b32_6to12_12x12", |bench| {
        bench.iter(|| black_box(conv2d(black_box(&input), &weight, &bias, 1)))
    });
    // The GEMM-lowered backend on the same shape (direct vs. im2col).
    c.bench_function("conv2d_im2col_b32_6to12_12x12", |bench| {
        bench.iter(|| black_box(conv2d_im2col(black_box(&input), &weight, &bias, 1)))
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(3);
    let input = Tensor::randn(Shape::d4(32, 6, 12, 12), 1.0, &mut rng);
    let weight = Tensor::randn(Shape::d4(12, 6, 3, 3), 0.3, &mut rng);
    let bias = Tensor::zeros(Shape::d1(12));
    let out = conv2d(&input, &weight, &bias, 1);
    c.bench_function("conv2d_bwd_b32_6to12_12x12", |bench| {
        bench.iter(|| black_box(conv2d_backward(black_box(&input), &weight, &out, 1)))
    });
}

fn bench_pool_and_loss(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(4);
    let x = Tensor::randn(Shape::d4(32, 12, 12, 12), 1.0, &mut rng);
    c.bench_function("maxpool2_b32_12ch_12x12", |bench| {
        bench.iter(|| black_box(maxpool2(black_box(&x))))
    });
    let logits = Tensor::randn(Shape::d2(192, 10), 1.0, &mut rng);
    let labels: Vec<usize> = (0..192).map(|i| i % 10).collect();
    c.bench_function("softmax_xent_b192_c10", |bench| {
        bench.iter(|| black_box(softmax_xent(black_box(&logits), &labels)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_matmul, bench_conv_forward, bench_conv_backward, bench_pool_and_loss
);
criterion_main!(benches);
