//! Benchmarks for the Max N machinery (§3.3): selection, the planner's
//! per-iteration preprocessing, and the budget→N inversion that runs once
//! per link per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use dlion_core::MaxNPlanner;
use dlion_tensor::sparse::{kth_largest_abs, max_n_select, n_for_budget};
use dlion_tensor::{DetRng, Shape, Tensor};
use std::hint::black_box;

fn model_like_grads() -> Vec<Tensor> {
    // Shapes roughly matching CipherNet's 10 weight variables (~15k params).
    let mut rng = DetRng::seed_from_u64(1);
    vec![
        Tensor::randn(Shape::d4(6, 1, 3, 3), 0.5, &mut rng),
        Tensor::randn(Shape::d1(6), 0.5, &mut rng),
        Tensor::randn(Shape::d4(12, 6, 3, 3), 0.5, &mut rng),
        Tensor::randn(Shape::d1(12), 0.5, &mut rng),
        Tensor::randn(Shape::d4(24, 12, 3, 3), 0.5, &mut rng),
        Tensor::randn(Shape::d1(24), 0.5, &mut rng),
        Tensor::randn(Shape::d2(216, 48), 0.5, &mut rng),
        Tensor::randn(Shape::d1(48), 0.5, &mut rng),
        Tensor::randn(Shape::d2(48, 10), 0.5, &mut rng),
        Tensor::randn(Shape::d1(10), 0.5, &mut rng),
    ]
}

fn bench_selection(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(2);
    let dense = Tensor::randn(Shape::d1(15_000), 1.0, &mut rng);
    c.bench_function("max_n_select_15k_n10", |b| {
        b.iter(|| black_box(max_n_select(black_box(dense.data()), 10.0)))
    });
    c.bench_function("kth_largest_abs_15k_k500", |b| {
        b.iter(|| black_box(kth_largest_abs(black_box(dense.data()), 500)))
    });
    c.bench_function("n_for_budget_15k_b500", |b| {
        b.iter(|| black_box(n_for_budget(black_box(dense.data()), 500, 0.85)))
    });
}

fn bench_planner(c: &mut Criterion) {
    let grads = model_like_grads();
    c.bench_function("planner_build_cipher_grads", |b| {
        b.iter(|| black_box(MaxNPlanner::new(black_box(&grads))))
    });
    let planner = MaxNPlanner::new(&grads);
    c.bench_function("planner_budget_inversion", |b| {
        b.iter(|| black_box(planner.n_for_entry_budget(black_box(700), 0.85)))
    });
    c.bench_function("planner_select_per_link", |b| {
        b.iter(|| black_box(planner.select(&grads, black_box(35.0))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_selection, bench_planner
);
criterion_main!(benches);
