//! End-to-end figure benchmarks: each paper table/figure family as a
//! scaled-down cluster simulation, timed by Criterion.
//!
//! These measure *simulator throughput per figure workload* (how long it
//! takes to regenerate a down-scaled version of each result); the
//! full-fidelity numbers come from `cargo run -p dlion-experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use dlion_core::{run_env, RunConfig, SystemKind};
use dlion_microcloud::{ClusterKind, EnvId};
use std::hint::black_box;

fn tiny(system: SystemKind, cluster: ClusterKind) -> RunConfig {
    let mut c = RunConfig::paper_default(system, cluster);
    c.duration = 60.0;
    c.workload.train_size = 1500;
    c.workload.test_size = 300;
    c.eval_interval = 30.0;
    c.eval_subset = 100;
    c.dkt.period_iters = 10;
    c
}

fn bench_fig11_system_heterogeneity(c: &mut Criterion) {
    c.bench_function("fig11_dlion_hetero_sys_a", |b| {
        b.iter(|| {
            black_box(run_env(
                &tiny(SystemKind::DLion, ClusterKind::Cpu),
                EnvId::HeteroSysA,
            ))
        })
    });
    c.bench_function("fig11_baseline_hetero_sys_a", |b| {
        b.iter(|| {
            black_box(run_env(
                &tiny(SystemKind::Baseline, ClusterKind::Cpu),
                EnvId::HeteroSysA,
            ))
        })
    });
}

fn bench_fig12_gpu_cluster(c: &mut Criterion) {
    c.bench_function("fig12_dlion_hetero_sys_c_gpu", |b| {
        b.iter(|| {
            black_box(run_env(
                &tiny(SystemKind::DLion, ClusterKind::Gpu),
                EnvId::HeteroSysC,
            ))
        })
    });
}

fn bench_fig13_compute_heterogeneity(c: &mut Criterion) {
    c.bench_function("fig13_dlion_hetero_cpu_a", |b| {
        b.iter(|| {
            black_box(run_env(
                &tiny(SystemKind::DLion, ClusterKind::Cpu),
                EnvId::HeteroCpuA,
            ))
        })
    });
}

fn bench_fig15_network_heterogeneity(c: &mut Criterion) {
    c.bench_function("fig15_gaia_hetero_net_a", |b| {
        b.iter(|| {
            black_box(run_env(
                &tiny(SystemKind::Gaia, ClusterKind::Cpu),
                EnvId::HeteroNetA,
            ))
        })
    });
}

fn bench_fig18_dynamic_resources(c: &mut Criterion) {
    c.bench_function("fig18_dlion_dynamic_sys_a", |b| {
        b.iter(|| {
            black_box(run_env(
                &tiny(SystemKind::DLion, ClusterKind::Cpu),
                EnvId::DynamicSysA,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig11_system_heterogeneity,
        bench_fig12_gpu_cluster,
        bench_fig13_compute_heterogeneity,
        bench_fig15_network_heterogeneity,
        bench_fig18_dynamic_resources
);
criterion_main!(benches);
