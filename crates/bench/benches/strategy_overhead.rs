//! Per-iteration overhead of each system's `generate_partial_gradients` —
//! the framework cost a real deployment would pay on every iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use dlion_core::strategy::{build_strategy, ExchangeStrategy, StrategyCtx};
use dlion_core::{RunConfig, SystemKind};
use dlion_microcloud::ClusterKind;
use dlion_nn::{cipher_net, Model};
use dlion_tensor::{DetRng, Shape, Tensor};
use std::hint::black_box;

fn setup() -> (Model, Vec<Tensor>, StrategyCtx) {
    let mut rng = DetRng::seed_from_u64(1);
    let model = cipher_net(&Shape::d4(1, 1, 12, 12), 10, 6, 12, 24, 48, &mut rng);
    let grads: Vec<Tensor> = (0..model.num_vars())
        .map(|v| Tensor::randn(model.var(v).shape().clone(), 0.1, &mut rng))
        .collect();
    let total_params = model.num_params();
    let ctx = StrategyCtx {
        worker: 0,
        n: 6,
        iteration: 7,
        now: 100.0,
        lbs: 32,
        iter_time: 2.0,
        neighbors: (1..6).collect(),
        bw_mbps: vec![0.0, 50.0, 50.0, 35.0, 20.0, 20.0],
        bytes_per_param: 5_000_000.0 / total_params as f64,
        total_params,
        lr: 0.15,
    };
    (model, grads, ctx)
}

fn strategy_for(kind: SystemKind) -> Box<dyn ExchangeStrategy> {
    let cfg = RunConfig::paper_default(kind, ClusterKind::Cpu);
    build_strategy(&cfg)
}

fn bench_strategies(c: &mut Criterion) {
    let (model, grads, ctx) = setup();
    for kind in [
        SystemKind::Baseline,
        SystemKind::Hop,
        SystemKind::Gaia,
        SystemKind::Ako,
        SystemKind::DLion,
        SystemKind::MaxNOnly(10.0),
    ] {
        let mut strategy = strategy_for(kind);
        let mut ctx = ctx.clone();
        c.bench_function(
            &format!("generate_partial_gradients_{}", kind.name()),
            |b| {
                b.iter(|| {
                    ctx.iteration += 1; // rotate Ako blocks realistically
                    black_box(strategy.generate_partial_gradients(&ctx, &grads, &model))
                })
            },
        );
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_strategies
);
criterion_main!(benches);
