pub fn stub() {}
