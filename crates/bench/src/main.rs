//! `dlion-bench` — self-contained `std::time::Instant` benchmark harness.
//!
//! Replaces the former criterion benches so the workspace benchmarks with
//! zero external dependencies (this repo builds fully offline). Usage:
//!
//! ```text
//! dlion-bench [kernels|maxn|e2e|telemetry|all]
//! ```
//!
//! Each measurement prints a human-readable line plus a machine-harvestable
//! `json:{...}` line (collected into `results/BENCH_kernels.json`).
//!
//! Before/after methodology: the seed (pre-optimization) matmul kernels are
//! compiled into this binary unconditionally (`matmul_seed_into` & co.), so
//! `kernels` mode reports blocked-vs-seed head-to-head from one build. For
//! *end-to-end* numbers, build the whole tree twice — the default build
//! routes the model through the blocked kernels; adding
//! `--features dlion-tensor/seed-kernels` reroutes it through the seed
//! algorithms (`e2e` mode labels its output with the active backend).

use dlion_core::messages::{GradData, GradMsg, Payload, WireCfg, WireFormat, FRAME_HEADER_BYTES};
use dlion_core::{run_env, ExchangeTransport, MaxNPlanner, RunConfig, SystemKind};
use dlion_microcloud::{ClusterKind, EnvId};
use dlion_net::loopback_mesh;
use dlion_tensor::ops::{
    conv2d, conv2d_backward, conv2d_backward_direct, conv2d_backward_im2col, conv2d_direct,
    conv2d_im2col, matmul_into, matmul_nt_into, matmul_nt_seed_into, matmul_seed_into,
    matmul_tn_into, matmul_tn_seed_into, maxpool2, softmax_xent,
};
use dlion_tensor::{kernel_backend, DetRng, Shape, Tensor};
use std::hint::black_box;
use std::time::Instant;

/// Time `f` adaptively: grow the repetition count until a batch takes at
/// least ~0.2 s, then report seconds per call.
fn bench<F: FnMut()>(label: &str, mut f: F) -> f64 {
    f(); // warmup (fills scratch/pack buffers, faults pages)
    let mut reps: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= 0.2 || reps >= 1 << 24 {
            let per = dt / reps as f64;
            println!("  {label:<44} {:>12.2} µs/call", per * 1e6);
            println!(
                "json:{{\"bench\":\"{label}\",\"us_per_call\":{:.3}}}",
                per * 1e6
            );
            return per;
        }
        reps = reps.saturating_mul(if dt < 0.02 { 8 } else { 2 });
    }
}

fn speedup(label: &str, before: f64, after: f64) {
    let x = before / after;
    println!("  {label:<44} {x:>11.2}x speedup");
    println!("json:{{\"speedup\":\"{label}\",\"factor\":{x:.3}}}");
}

fn mm_pair(rng: &mut DetRng, m: usize, k: usize, n: usize) -> (Tensor, Tensor, Vec<f32>) {
    let a = Tensor::randn(Shape::d2(m, k), 1.0, rng);
    let b = Tensor::randn(Shape::d2(k, n), 1.0, rng);
    let out = vec![0.0f32; m * n];
    (a, b, out)
}

fn kernels() {
    println!("== kernels ==");
    let mut rng = DetRng::seed_from_u64(42);

    // The acceptance-criterion shape plus the old criterion-bench shape.
    for &(m, k, n) in &[(256usize, 256usize, 256usize), (64, 216, 48)] {
        let (a, b, mut out) = mm_pair(&mut rng, m, k, n);
        let t_new = bench(&format!("matmul {m}x{k}x{n} blocked"), || {
            matmul_into(black_box(&a), black_box(&b), black_box(&mut out))
        });
        let t_old = bench(&format!("matmul {m}x{k}x{n} seed"), || {
            matmul_seed_into(black_box(&a), black_box(&b), black_box(&mut out))
        });
        speedup(&format!("matmul {m}x{k}x{n}"), t_old, t_new);
    }

    // Transposed variants (backward-pass kernels), 128^3.
    {
        let (m, k, n) = (128usize, 128usize, 128usize);
        let a = Tensor::randn(Shape::d2(m, k), 1.0, &mut rng);
        let bt = Tensor::randn(Shape::d2(n, k), 1.0, &mut rng);
        let at = Tensor::randn(Shape::d2(k, m), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(k, n), 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        let nt_new = bench("matmul_nt 128^3 blocked", || {
            matmul_nt_into(black_box(&a), black_box(&bt), black_box(&mut out))
        });
        let nt_old = bench("matmul_nt 128^3 seed", || {
            matmul_nt_seed_into(black_box(&a), black_box(&bt), black_box(&mut out))
        });
        speedup("matmul_nt 128^3", nt_old, nt_new);
        let tn_new = bench("matmul_tn 128^3 blocked", || {
            matmul_tn_into(black_box(&at), black_box(&b), black_box(&mut out))
        });
        let tn_old = bench("matmul_tn 128^3 seed", || {
            matmul_tn_seed_into(black_box(&at), black_box(&b), black_box(&mut out))
        });
        speedup("matmul_tn 128^3", tn_old, tn_new);
    }

    // Convolution, old criterion-bench shape: (32,6,12,12) ⊛ (12,6,3,3) pad 1.
    {
        let input = Tensor::randn(Shape::d4(32, 6, 12, 12), 1.0, &mut rng);
        let weight = Tensor::randn(Shape::d4(12, 6, 3, 3), 0.2, &mut rng);
        let bias = Tensor::zeros(Shape::d1(12));
        let fwd_gemm = bench("conv2d fwd im2col+GEMM", || {
            black_box(conv2d_im2col(
                black_box(&input),
                black_box(&weight),
                black_box(&bias),
                1,
            ));
        });
        let fwd_direct = bench("conv2d fwd direct (seed)", || {
            black_box(conv2d_direct(
                black_box(&input),
                black_box(&weight),
                black_box(&bias),
                1,
            ));
        });
        speedup("conv2d fwd", fwd_direct, fwd_gemm);
        let out = conv2d(&input, &weight, &bias, 1);
        let dout = Tensor::randn(out.shape().clone(), 1.0, &mut rng);
        let bwd_gemm = bench("conv2d bwd im2col+GEMM", || {
            black_box(conv2d_backward_im2col(
                black_box(&input),
                black_box(&weight),
                black_box(&dout),
                1,
            ));
        });
        let bwd_direct = bench("conv2d bwd direct (seed)", || {
            black_box(conv2d_backward_direct(
                black_box(&input),
                black_box(&weight),
                black_box(&dout),
                1,
            ));
        });
        speedup("conv2d bwd", bwd_direct, bwd_gemm);
        // Sanity: the dispatcher must be picking the winner on this shape.
        bench("conv2d bwd dispatched", || {
            black_box(conv2d_backward(
                black_box(&input),
                black_box(&weight),
                black_box(&dout),
                1,
            ));
        });
    }

    // Remaining hot ops from the old criterion suite.
    {
        let pool_in = Tensor::randn(Shape::d4(32, 12, 12, 12), 1.0, &mut rng);
        bench("maxpool2 (32,12,12,12)", || {
            black_box(maxpool2(black_box(&pool_in)));
        });
        let logits = Tensor::randn(Shape::d2(192, 10), 1.0, &mut rng);
        let labels: Vec<usize> = (0..192).map(|i| i % 10).collect();
        bench("softmax_xent (192,10)", || {
            black_box(softmax_xent(black_box(&logits), black_box(&labels)));
        });
    }
}

fn maxn() {
    println!("== maxn ==");
    let mut rng = DetRng::seed_from_u64(7);
    let grads: Vec<Tensor> = vec![
        Tensor::randn(Shape::d1(200_000), 1.0, &mut rng),
        Tensor::randn(Shape::d1(50_000), 0.2, &mut rng),
        Tensor::randn(Shape::d2(300, 100), 2.0, &mut rng),
    ];
    bench("MaxNPlanner::new 280k entries", || {
        black_box(MaxNPlanner::new(black_box(&grads)));
    });
    let p = MaxNPlanner::new(&grads);
    bench("count_for_n x100", || {
        for i in 1..=100 {
            black_box(p.count_for_n(i as f64));
        }
    });
    bench("n_for_entry_budget", || {
        black_box(p.n_for_entry_budget(black_box(10_000), 0.85));
    });
}

fn e2e() {
    println!("== e2e (kernel backend: {}) ==", kernel_backend());
    let mut cfg = RunConfig::paper_default(SystemKind::DLion, ClusterKind::Cpu);
    cfg.seed = 1;
    cfg.duration = 120.0;
    cfg.workload.train_size = 1200;
    cfg.workload.test_size = 400;
    cfg.eval_subset = 100;
    let t0 = Instant::now();
    let m = run_env(&cfg, EnvId::HomoA);
    let dt = t0.elapsed().as_secs_f64();
    let iters: u64 = m.iterations.iter().sum();
    println!("  run_env DLion/HomoA 120s sim: {dt:.2} s wall, {iters} iterations");
    println!(
        "json:{{\"bench\":\"e2e_dlion_homoa\",\"backend\":\"{}\",\"wall_s\":{dt:.3},\"iterations\":{iters}}}",
        kernel_backend()
    );
}

/// Telemetry overhead on the `e2e` workload: the disabled path (all
/// instrumentation compiled in but gated off — exactly how every figure
/// run executes) versus everything on at once (per-run registry, JSONL
/// tracing into a null sink, wall-clock profiler).
fn telemetry() {
    println!("== telemetry ==");
    let base_cfg = || {
        let mut cfg = RunConfig::paper_default(SystemKind::DLion, ClusterKind::Cpu);
        cfg.seed = 1;
        cfg.duration = 120.0;
        cfg.workload.train_size = 1200;
        cfg.workload.test_size = 400;
        cfg.eval_subset = 100;
        cfg
    };
    let run_once = |cfg: &RunConfig| {
        let t0 = Instant::now();
        let m = run_env(cfg, EnvId::HomoA);
        (t0.elapsed().as_secs_f64(), m.iterations.iter().sum::<u64>())
    };
    const REPS: usize = 5;
    let cfg = base_cfg();
    run_once(&cfg); // warmup
    let mut off = f64::INFINITY;
    let mut iters = 0u64;
    for _ in 0..REPS {
        let (dt, it) = run_once(&cfg);
        off = off.min(dt);
        iters = it;
    }
    let mut on_cfg = base_cfg();
    on_cfg.telemetry = true;
    dlion_telemetry::set_trace_writer(Box::new(std::io::sink()));
    dlion_telemetry::profiler::enable(true);
    let mut on = f64::INFINITY;
    for _ in 0..REPS {
        let (dt, _) = run_once(&on_cfg);
        on = on.min(dt);
    }
    dlion_telemetry::stop_trace();
    dlion_telemetry::profiler::enable(false);
    let pct = (on / off - 1.0) * 100.0;
    println!("  e2e telemetry off (disabled gates):  {off:.3} s wall, {iters} iterations");
    println!("  e2e telemetry on (registry+trace+profiler): {on:.3} s wall");
    println!("  enabled overhead: {pct:.1}%");
    println!(
        "json:{{\"bench\":\"telemetry_overhead\",\"off_wall_s\":{off:.3},\"on_wall_s\":{on:.3},\
         \"enabled_overhead_pct\":{pct:.2},\"iterations\":{iters}}}"
    );

    // Direct cost of one disabled instrumentation site: the `event!` macro
    // reduces to a relaxed atomic load + branch when no sink is installed.
    // Multiplied by the sites hit per run, this bounds the telemetry-off
    // overhead independently of run-to-run wall-clock noise.
    let gate_ns = bench("disabled event! gate", || {
        for i in 0..1024u64 {
            dlion_telemetry::event!(0.0, w: 0, "bench_gate"; "i" => black_box(i));
        }
    }) * 1e9
        / 1024.0;
    println!("json:{{\"bench\":\"disabled_gate\",\"ns_per_site\":{gate_ns:.3}}}");

    // Health-plane overhead on a live 3-worker cluster (in-memory
    // transport, so the measurement is the reporting machinery itself —
    // stats encoding, KIND_STATS fan-out, aggregation, training-clock
    // bookkeeping — not socket noise). Off must be ~free (the plane is a
    // handful of `Option` checks when disabled), on must stay <1% e2e.
    let live_cfg = {
        let mut cfg = dlion_net::live_config(SystemKind::DLion, 1);
        cfg.duration = 10_000.0;
        cfg.eval_interval = 10_000.0;
        cfg.workload.train_size = 4800;
        cfg.max_iters = Some(120);
        cfg
    };
    let live_once = |health: Option<f64>| {
        let opts = dlion_net::LiveOpts {
            iters: 120,
            eval_every: 0,
            assumed_iter_time: Some(0.05),
            health_interval: health,
            ..Default::default()
        };
        let t0 = Instant::now();
        dlion_net::run_live(
            &live_cfg,
            3,
            &opts,
            dlion_net::TransportKind::Mem,
            "bench/health",
        )
        .expect("live run");
        t0.elapsed().as_secs_f64()
    };
    live_once(None); // warmup
    let (mut h_off, mut h_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        h_off = h_off.min(live_once(None));
        // 0.1s of training clock per report: 20 rounds over the 40-iter
        // run — a denser cadence than any real deployment would pick.
        h_on = h_on.min(live_once(Some(0.1)));
    }
    let h_pct = (h_on / h_off - 1.0) * 100.0;
    println!("  live 3w health off: {h_off:.3} s wall");
    println!("  live 3w health on (interval 0.1): {h_on:.3} s wall");
    println!("  health-plane overhead: {h_pct:.1}%");
    println!(
        "json:{{\"bench\":\"health_plane_overhead\",\"off_wall_s\":{h_off:.3},\
         \"on_wall_s\":{h_on:.3},\"enabled_overhead_pct\":{h_pct:.2}}}"
    );
}

/// Wire-codec and live-transport throughput: encode/decode a 5 MB dense
/// gradient (the paper's model scale), then push it across a real
/// loopback TCP link through the `dlion-net` transport stack (framing,
/// bounded send queue, reader reassembly, checksum verification).
fn net() {
    println!("== net ==");
    let mut rng = DetRng::seed_from_u64(5);
    let payload = Payload::Grad(GradMsg {
        iteration: 1,
        lbs: 32,
        data: GradData::Dense(vec![Tensor::randn(Shape::d1(1_310_720), 1.0, &mut rng)]),
        n_used: 100.0,
    });
    let frame = payload.to_frame();
    let mb = frame.len() as f64 / 1e6;
    println!("  frame size: {:.2} MB ({} bytes)", mb, frame.len());

    let enc = bench("codec encode 5MB dense grad", || {
        black_box(black_box(&payload).to_frame());
    });
    println!("  encode throughput: {:.0} MB/s", mb / enc);
    let dec = bench("codec decode+verify 5MB dense grad", || {
        black_box(Payload::from_frame(black_box(&frame)).expect("valid frame"));
    });
    println!("  decode throughput: {:.0} MB/s", mb / dec);
    println!(
        "json:{{\"bench\":\"codec_5mb_grad\",\"frame_bytes\":{},\"encode_mb_s\":{:.1},\
         \"decode_mb_s\":{:.1}}}",
        frame.len(),
        mb / enc,
        mb / dec
    );

    // Chunked streaming: encode into a sink chunk by chunk (the live
    // writer-thread path) and decode the reassembled stream back through
    // the pooled, allocation-free receiver path.
    let cfg = WireCfg::default();
    let mut scratch = Vec::new();
    let mut out: Vec<u8> = Vec::with_capacity(payload.wire_len(&cfg));
    let enc_c = bench("chunked encode 5MB dense grad", || {
        out.clear();
        black_box(
            payload
                .write_wire(&mut out, &cfg, &mut scratch)
                .expect("stream"),
        );
    });
    println!("  chunked encode throughput: {:.0} MB/s", mb / enc_c);
    let stream = payload.to_wire(&cfg);
    let mut dec_scratch = Vec::new();
    let mut pool: Vec<Vec<f32>> = Vec::new();
    let dec_c = bench("chunked decode+verify 5MB dense grad (pooled)", || {
        let (kind, body) = dlion_core::messages::decode_wire(black_box(&stream), &mut dec_scratch)
            .expect("valid stream");
        let p = Payload::decode_body_pooled(kind, body, &mut pool).expect("valid body");
        black_box(&p);
        p.recycle(&mut pool);
    });
    println!("  chunked decode throughput: {:.0} MB/s", mb / dec_c);
    println!(
        "json:{{\"bench\":\"chunked_5mb_grad\",\"stream_bytes\":{},\"encode_mb_s\":{:.1},\
         \"decode_mb_s\":{:.1}}}",
        stream.len(),
        mb / enc_c,
        mb / dec_c
    );

    // First-byte-on-wire latency: how long after `write_wire` starts does
    // the first body chunk reach the sink? One chunk's serialize time, vs
    // the full-frame serialize the plain codec needs before byte one.
    struct FirstChunk {
        start: Instant,
        bytes: usize,
        first_chunk_s: Option<f64>,
    }
    impl std::io::Write for FirstChunk {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.bytes += buf.len();
            if self.first_chunk_s.is_none() && self.bytes > FRAME_HEADER_BYTES {
                self.first_chunk_s = Some(self.start.elapsed().as_secs_f64());
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut first = f64::INFINITY;
    for _ in 0..32 {
        let mut sink = FirstChunk {
            start: Instant::now(),
            bytes: 0,
            first_chunk_s: None,
        };
        payload
            .write_wire(&mut sink, &cfg, &mut scratch)
            .expect("stream");
        first = first.min(sink.first_chunk_s.expect("one chunk written"));
    }
    println!(
        "  first byte on wire after: {:.3} ms (vs {:.3} ms full-serialize)",
        first * 1e3,
        enc * 1e3
    );
    println!(
        "json:{{\"bench\":\"first_byte_5mb_grad\",\"first_chunk_ms\":{:.3},\
         \"full_serialize_ms\":{:.3}}}",
        first * 1e3,
        enc * 1e3
    );

    // Quantized wire formats over the same 5 MB-equivalent payload.
    for (name, format) in [("fp16", WireFormat::Fp16), ("int8", WireFormat::Int8)] {
        let qcfg = WireCfg {
            format,
            ..WireCfg::default()
        };
        let q_enc = bench(&format!("codec encode 5MB grad as {name}"), || {
            out.clear();
            black_box(
                payload
                    .write_wire(&mut out, &qcfg, &mut scratch)
                    .expect("stream"),
            );
        });
        let qstream = payload.to_wire(&qcfg);
        let q_dec = bench(&format!("codec decode 5MB grad as {name}"), || {
            let (kind, body) =
                dlion_core::messages::decode_wire(black_box(&qstream), &mut dec_scratch)
                    .expect("valid stream");
            let p = Payload::decode_body_pooled(kind, body, &mut pool).expect("valid body");
            black_box(&p);
            p.recycle(&mut pool);
        });
        println!(
            "  {name}: {} wire bytes ({:.0}% of dense), encode {:.0} MB/s, decode {:.0} MB/s",
            qstream.len(),
            100.0 * qstream.len() as f64 / stream.len() as f64,
            mb / q_enc,
            mb / q_dec
        );
        println!(
            "json:{{\"bench\":\"quantized_5mb_grad_{name}\",\"stream_bytes\":{},\
             \"encode_mb_s\":{:.1},\"decode_mb_s\":{:.1}}}",
            qstream.len(),
            mb / q_enc,
            mb / q_dec
        );
    }

    // Round-trip the frame over a live loopback TCP link; both directions
    // are in flight, so one round trip moves 2 frames of payload.
    let tcp_opts = dlion_net::TcpOpts {
        queue_cap: 4,
        establish_timeout: std::time::Duration::from_secs(30),
        ..Default::default()
    };
    let mut mesh = loopback_mesh(2, 5, &tcp_opts, None).expect("mesh");
    let mut b = mesh.pop().expect("node 1");
    let mut a = mesh.pop().expect("node 0");
    let echo = std::thread::spawn(move || {
        while let Ok(Some((_, f))) = b.recv_frame_timeout(std::time::Duration::from_secs(5)) {
            if b.send_frame(0, f).is_err() {
                break;
            }
        }
    });
    let rtt = bench("loopback TCP 5MB grad round trip", || {
        a.send_frame(1, frame.clone()).expect("send");
        let (_, back) = a
            .recv_frame_timeout(std::time::Duration::from_secs(30))
            .expect("recv")
            .expect("echo before timeout");
        assert_eq!(back.len(), frame.len());
    });
    drop(a);
    echo.join().expect("echo thread");
    let tput = 2.0 * mb / rtt;
    println!("  transport throughput: {tput:.0} MB/s (both directions)");
    println!(
        "json:{{\"bench\":\"tcp_loopback_5mb_grad\",\"round_trip_ms\":{:.3},\
         \"throughput_mb_s\":{tput:.1}}}",
        rtt * 1e3
    );
}

/// Resident-set sizes from `/proc/self/status` in bytes: `(VmRSS, VmHWM)`.
/// Returns zeros on platforms without procfs — the sim bench then reports
/// throughput only.
fn rss_bytes() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(0, |kb| kb * 1024)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

/// Event-loop throughput and per-worker memory of the discrete-event
/// simulator at scale: a `kregular:8` Baseline cell (the thousand-worker
/// determinism soak's shape) at n=256 and n=1024. Reported rows feed
/// `results/BENCH_sim.json`; the before/after pairs there bracket the
/// scaling work (COW weight snapshots, flat link classes, per-round
/// topology memoization).
fn sim() {
    println!("== sim ==");
    for &(n, iters) in &[(256usize, 6u64), (1024, 6)] {
        let mut cfg = RunConfig::small_test(SystemKind::Baseline);
        cfg.duration = 1e9;
        cfg.eval_interval = 1e9;
        cfg.max_iters = Some(iters);
        cfg.workload.train_size = 8 * n;
        cfg.workload.test_size = 64;
        cfg.eval_subset = 32;
        cfg.telemetry = true;
        cfg.topology = dlion_core::Topology::KRegular { k: 8 };
        let compute = dlion_simnet::ComputeModel::homogeneous(n, 1.0, 0.001, 0.05);
        let net = dlion_simnet::NetworkModel::uniform(n, 1000.0, 0.001);
        let (rss_before, _) = rss_bytes();
        dlion_telemetry::profiler::reset();
        dlion_telemetry::profiler::enable(true);
        let t0 = Instant::now();
        let m = dlion_core::run_with_models(&cfg, compute, net, "bench/sim");
        let wall = t0.elapsed().as_secs_f64();
        dlion_telemetry::profiler::enable(false);
        println!("{}", dlion_telemetry::profiler::render_table(wall));
        let (rss_after, hwm) = rss_bytes();
        let events = m.telemetry.counter("events");
        let events_per_sec = events as f64 / wall;
        let per_worker = rss_after.saturating_sub(rss_before) / n as u64;
        let total_iters: u64 = m.iterations.iter().sum();
        println!(
            "  sim n={n:<5} {iters} iters: {wall:.2} s wall, {events} events \
             ({events_per_sec:.0}/s), {total_iters} iterations, \
             {:.1} MB run RSS ({per_worker} B/worker), peak {:.1} MB",
            rss_after.saturating_sub(rss_before) as f64 / 1e6,
            hwm as f64 / 1e6
        );
        println!(
            "json:{{\"bench\":\"sim_kregular8_n{n}\",\"workers\":{n},\"iters\":{iters},\
             \"wall_s\":{wall:.3},\"events\":{events},\"events_per_sec\":{events_per_sec:.1},\
             \"run_rss_bytes_per_worker\":{per_worker},\"peak_rss_bytes\":{hwm}}}"
        );
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match mode.as_str() {
        "kernels" => kernels(),
        "maxn" => maxn(),
        "e2e" => e2e(),
        "telemetry" => telemetry(),
        "net" => net(),
        "sim" => sim(),
        "all" => {
            kernels();
            maxn();
            e2e();
            telemetry();
            net();
            sim();
        }
        other => {
            eprintln!("unknown mode `{other}`; expected kernels|maxn|e2e|telemetry|net|sim|all");
            std::process::exit(2);
        }
    }
}
