//! Reproduction verdicts: automated *shape* checks over the CSVs the
//! experiments wrote, asserting the qualitative claims the paper's
//! evaluation makes (who wins where, which trends hold). The output is the
//! verdict table recorded in EXPERIMENTS.md.

use crate::output::Table;
use std::collections::HashMap;
use std::path::Path;

/// Parse a cell like `0.530`, `0.530 ±0.012` or `1242` into a number.
pub fn parse_val(cell: &str) -> Option<f64> {
    cell.split_whitespace().next()?.parse().ok()
}

/// A parsed CSV: headers plus rows of raw cells.
pub struct Csv {
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Csv {
    pub fn load(dir: &Path, id: &str) -> Option<Csv> {
        let text = std::fs::read_to_string(dir.join(format!("{id}.csv"))).ok()?;
        let mut lines = text.lines();
        let split = |l: &str| -> Vec<String> {
            // Our writer only quotes cells containing commas; those cells
            // never carry the numbers the checks need, so a plain split with
            // quote-stripping suffices.
            l.split(',')
                .map(|c| c.trim_matches('"').to_string())
                .collect()
        };
        let headers = split(lines.next()?);
        let rows = lines.filter(|l| !l.is_empty()).map(split).collect();
        Some(Csv { headers, rows })
    }

    /// Value at (row labelled `row_label` in column 0, column named `col`).
    pub fn val(&self, row_label: &str, col: &str) -> Option<f64> {
        let ci = self.headers.iter().position(|h| h == col)?;
        let row = self.rows.iter().find(|r| r[0] == row_label)?;
        parse_val(&row[ci])
    }
}

struct Check {
    figure: &'static str,
    claim: &'static str,
    outcome: Option<bool>,
    detail: String,
}

fn check(
    out: &mut Vec<Check>,
    figure: &'static str,
    claim: &'static str,
    values: Option<(f64, f64)>,
    cmp: impl Fn(f64, f64) -> bool,
) {
    match values {
        Some((a, b)) => out.push(Check {
            figure,
            claim,
            outcome: Some(cmp(a, b)),
            detail: format!("{a:.3} vs {b:.3}"),
        }),
        None => out.push(Check {
            figure,
            claim,
            outcome: None,
            detail: "missing data".into(),
        }),
    }
}

/// Evaluate all shape checks against the CSVs in `dir`.
pub fn verdicts(dir: &Path) -> Table {
    let load = |id: &str| Csv::load(dir, id);
    let csvs: HashMap<&str, Option<Csv>> = [
        "fig5", "fig7", "fig9b", "fig9c", "fig11", "fig12", "fig13", "fig15", "fig16", "fig17",
        "fig18", "fig21",
    ]
    .into_iter()
    .map(|id| (id, load(id)))
    .collect();
    let get = |id: &str, row: &str, col: &str| -> Option<f64> {
        csvs.get(id)
            .and_then(|c| c.as_ref())
            .and_then(|c| c.val(row, col))
    };
    let pair = |id: &str, r1: &str, c1: &str, r2: &str, c2: &str| -> Option<(f64, f64)> {
        Some((get(id, r1, c1)?, get(id, r2, c2)?))
    };

    let mut checks = Vec::new();
    check(
        &mut checks,
        "fig5",
        "doubling GBS from epoch 0 hurts vs never",
        pair(
            "fig5",
            "epoch 0",
            "Final accuracy",
            "never (fixed GBS)",
            "Final accuracy",
        ),
        |a, b| a < b,
    );
    check(
        &mut checks,
        "fig5",
        "late doubling (epoch 8) is ~harmless (>=90% of never)",
        pair(
            "fig5",
            "epoch 8",
            "Final accuracy",
            "never (fixed GBS)",
            "Final accuracy",
        ),
        |a, b| a >= 0.9 * b,
    );
    check(
        &mut checks,
        "fig7",
        "larger N reaches higher converged accuracy (N=100 vs N=1)",
        pair("fig7", "100", "Best accuracy", "1", "Best accuracy"),
        |a, b| a > b,
    );
    check(
        &mut checks,
        "fig9b",
        "DKT_Best2all beats No_DKT",
        pair(
            "fig9b",
            "DKT_Best2all",
            "Final accuracy",
            "No_DKT",
            "Final accuracy",
        ),
        |a, b| a > b,
    );
    check(
        &mut checks,
        "fig9b",
        "DKT_Best2all beats DKT_Best2worst",
        pair(
            "fig9b",
            "DKT_Best2all",
            "Final accuracy",
            "DKT_Best2worst",
            "Final accuracy",
        ),
        |a, b| a >= b,
    );
    check(
        &mut checks,
        "fig9c",
        "lambda=0.75 beats lambda=0 (no DKT)",
        pair("fig9c", "0.75", "Final accuracy", "0", "Final accuracy"),
        |a, b| a > b,
    );
    for env in ["Homo A", "Hetero SYS A", "Hetero SYS B"] {
        check(
            &mut checks,
            "fig11",
            if env == "Homo A" {
                "DLion beats Baseline in Homo A"
            } else if env == "Hetero SYS A" {
                "DLion beats Baseline in Hetero SYS A"
            } else {
                "DLion beats Baseline in Hetero SYS B"
            },
            pair("fig11", "DLion", env, "Baseline", env),
            |a, b| a > b,
        );
    }
    for env in ["Homo C", "Hetero SYS C"] {
        check(
            &mut checks,
            "fig12",
            if env == "Homo C" {
                "DLion best on the GPU cluster (Homo C, vs Hop)"
            } else {
                "DLion best on the GPU cluster (Hetero SYS C, vs Ako)"
            },
            pair(
                "fig12",
                "DLion",
                env,
                if env == "Homo C" { "Hop" } else { "Ako" },
                env,
            ),
            |a, b| a > b,
        );
    }
    check(
        &mut checks,
        "fig13",
        "DLion beats Baseline under compute heterogeneity (Hetero CPU A)",
        pair("fig13", "DLion", "Hetero CPU A", "Baseline", "Hetero CPU A"),
        |a, b| a > b,
    );
    check(
        &mut checks,
        "fig15",
        "LAN beats WAN for the dense Baseline (Homo A vs Homo B)",
        pair("fig15", "Baseline", "Homo A", "Baseline", "Homo B"),
        |a, b| a > b,
    );
    check(
        &mut checks,
        "fig15",
        "DLion best under network heterogeneity (Hetero NET A, vs Baseline)",
        pair("fig15", "DLion", "Hetero NET A", "Baseline", "Hetero NET A"),
        |a, b| a > b,
    );
    check(
        &mut checks,
        "fig16",
        "Max10 alone beats Baseline on the WAN (Homo B)",
        pair("fig16", "Max10", "Homo B", "Baseline", "Homo B"),
        |a, b| a > b,
    );
    check(
        &mut checks,
        "fig17",
        "DLion's worker deviation below Ako's (Hetero SYS B)",
        pair("fig17", "DLion", "Hetero SYS B", "Ako", "Hetero SYS B"),
        |a, b| a < b,
    );
    for env in ["Dynamic SYS A", "Dynamic SYS B"] {
        check(
            &mut checks,
            "fig18",
            if env == "Dynamic SYS A" {
                "DLion beats Baseline under dynamism (Dynamic SYS A)"
            } else {
                "DLion beats Baseline under dynamism (Dynamic SYS B)"
            },
            pair("fig18", "DLion", env, "Baseline", env),
            |a, b| a > b,
        );
    }
    check(
        &mut checks,
        "fig21",
        "DLion reaches the highest converged accuracy (vs Baseline)",
        pair(
            "fig21",
            "DLion",
            "Best accuracy",
            "Baseline",
            "Best accuracy",
        ),
        |a, b| a > b,
    );

    let mut t = Table::new(
        "verdicts",
        "Reproduction shape checks against the paper's qualitative claims",
        &["Figure", "Claim", "Verdict", "Measured"],
    );
    for c in checks {
        t.row(vec![
            c.figure.to_string(),
            c.claim.to_string(),
            match c.outcome {
                Some(true) => "PASS".into(),
                Some(false) => "DIVERGES".into(),
                None => "NO DATA".into(),
            },
            c.detail,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_val_variants() {
        assert_eq!(parse_val("0.530"), Some(0.530));
        assert_eq!(parse_val("0.530 ±0.012"), Some(0.530));
        assert_eq!(parse_val("1242"), Some(1242.0));
        assert_eq!(parse_val("not reached"), None);
        assert_eq!(parse_val(""), None);
    }

    #[test]
    fn csv_lookup() {
        let dir = std::env::temp_dir().join("dlion-verdict-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("figx.csv"),
            "System,Homo A,Homo B\nDLion,0.570 ±0.01,0.530\nBaseline,0.536,0.316\n",
        )
        .unwrap();
        let csv = Csv::load(&dir, "figx").unwrap();
        assert_eq!(csv.val("DLion", "Homo A"), Some(0.570));
        assert_eq!(csv.val("Baseline", "Homo B"), Some(0.316));
        assert_eq!(csv.val("Nobody", "Homo A"), None);
        assert_eq!(csv.val("DLion", "Nowhere"), None);
    }

    #[test]
    fn verdicts_report_missing_data_gracefully() {
        let dir = std::env::temp_dir().join("dlion-verdict-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let t = verdicts(&dir);
        assert!(!t.rows.is_empty());
        assert!(t.rows.iter().all(|r| r[2] == "NO DATA"));
    }

    #[test]
    fn verdicts_pass_and_diverge() {
        let dir = std::env::temp_dir().join("dlion-verdict-mixed");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("fig11.csv"),
            "System,Homo A,Hetero SYS A,Hetero SYS B\nBaseline,0.5,0.4,0.3\nDLion,0.6,0.3,0.5\n",
        )
        .unwrap();
        let t = verdicts(&dir);
        let row = |claim: &str| t.rows.iter().find(|r| r[1].contains(claim)).unwrap()[2].clone();
        assert_eq!(row("Homo A"), "PASS");
        assert_eq!(row("Hetero SYS A"), "DIVERGES");
        assert_eq!(row("Hetero SYS B"), "PASS");
    }
}
