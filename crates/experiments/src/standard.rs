//! The shared pool of "standard" runs.
//!
//! Several figures (11, 13, 15, 16, 17, 18) evaluate the same systems in
//! overlapping environments with identical settings (Cipher, 1500 s). The
//! pool memoizes each `(system, env, seed)` run so the `all` command never
//! simulates the same configuration twice.

use crate::opts::ExpOpts;
use dlion_core::{run_env, RunConfig, RunMetrics, SystemKind};
use dlion_microcloud::{ClusterKind, EnvId};
use dlion_tensor::stats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Fan a batch of `(config, env)` simulation cells over the worker pool.
///
/// Every experiment that sweeps `(system, env, seed)` builds its full cell
/// list first and hands it here, so independent simulations run
/// concurrently when cores are available. Results come back in input
/// (index) order regardless of execution interleaving, so tables built
/// from them are byte-identical to the old serial loops. On a single-core
/// host the pool degrades to an inline serial loop.
///
/// Sweep progress (cells completed / total, elapsed, ETA) is reported at
/// `info` level on the `experiments.sweep` target as cells finish.
pub fn fan_cells(cells: &[(RunConfig, EnvId)]) -> Vec<RunMetrics> {
    let total = cells.len();
    let done = AtomicUsize::new(0);
    let t0 = Instant::now();
    dlion_tensor::par::par_map(cells, |(cfg, env)| {
        let m = run_env(cfg, *env);
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if total > 1 {
            let elapsed = t0.elapsed().as_secs_f64();
            let eta = elapsed / d as f64 * (total - d) as f64;
            dlion_telemetry::info!(target: "experiments.sweep",
                "{d}/{total} cells done ({} / {} / seed {}); {elapsed:.0}s elapsed, ~{eta:.0}s left",
                m.system, m.env, cfg.seed);
        }
        m
    })
}

/// Memoizing runner for the standard CPU-cluster configuration.
pub struct StandardRuns {
    opts: ExpOpts,
    memo: HashMap<(String, EnvId, u64), RunMetrics>,
}

impl StandardRuns {
    pub fn new(opts: &ExpOpts) -> Self {
        StandardRuns {
            opts: opts.clone(),
            memo: HashMap::new(),
        }
    }

    /// The standard CPU config for a system: paper defaults, 1500 s.
    pub fn config(&self, system: SystemKind, seed: u64) -> RunConfig {
        let mut cfg = RunConfig::paper_default(system, ClusterKind::Cpu);
        cfg.seed = seed;
        cfg.duration = self.opts.dur(1500.0);
        cfg.workload.train_size = self.opts.train_size(24_000);
        cfg.workload.test_size = if self.opts.fast { 400 } else { 2000 };
        cfg.eval_subset = if self.opts.fast { 150 } else { 250 };
        cfg
    }

    /// All seeds' metrics for `(system, env)`, running anything missing.
    /// Missing seeds fan over the worker pool as one batch.
    pub fn get(&mut self, system: SystemKind, env: EnvId) -> Vec<RunMetrics> {
        let missing: Vec<u64> = self
            .opts
            .seeds
            .iter()
            .copied()
            .filter(|&seed| !self.memo.contains_key(&(system.name(), env, seed)))
            .collect();
        if !missing.is_empty() {
            for &seed in &missing {
                dlion_telemetry::debug!(target: "experiments.progress",
                    "  running {} / {} / seed {seed} ...",
                    system.name(),
                    env.name()
                );
            }
            let cells: Vec<(RunConfig, EnvId)> = missing
                .iter()
                .map(|&seed| (self.config(system, seed), env))
                .collect();
            for (&seed, m) in missing.iter().zip(fan_cells(&cells)) {
                self.memo.insert((system.name(), env, seed), m);
            }
        }
        self.opts
            .seeds
            .iter()
            .map(|&seed| self.memo[&(system.name(), env, seed)].clone())
            .collect()
    }
}

/// Evaluation points averaged into the end-of-run accuracy (noise
/// smoothing; see [`RunMetrics::tail_mean_acc`]).
pub const TAIL_EVALS: usize = 3;

/// Mean and 95% CI of end-of-run accuracy across seed runs.
pub fn acc_final(runs: &[RunMetrics]) -> (f64, f64) {
    let xs: Vec<f64> = runs.iter().map(|m| m.tail_mean_acc(TAIL_EVALS)).collect();
    (stats::mean(&xs), stats::ci95(&xs))
}

/// Mean and CI of the best (peak) mean accuracy across seed runs.
pub fn acc_best(runs: &[RunMetrics]) -> (f64, f64) {
    let xs: Vec<f64> = runs.iter().map(|m| m.best_mean_acc()).collect();
    (stats::mean(&xs), stats::ci95(&xs))
}

/// Mean and CI of the across-worker accuracy std-dev (Fig. 17's metric).
pub fn acc_deviation(runs: &[RunMetrics]) -> (f64, f64) {
    let xs: Vec<f64> = runs.iter().map(|m| m.final_acc_std()).collect();
    (stats::mean(&xs), stats::ci95(&xs))
}

/// Mean time-to-target across seed runs; `None` if any run never got there.
pub fn time_to(runs: &[RunMetrics], target: f64) -> Option<f64> {
    let mut xs = Vec::new();
    for m in runs {
        xs.push(m.time_to_accuracy(target)?);
    }
    Some(stats::mean(&xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_avoids_reruns() {
        let mut sr = StandardRuns::new(&ExpOpts::fast());
        let a = sr.get(SystemKind::Baseline, EnvId::HomoA);
        assert_eq!(sr.memo.len(), 1);
        let b = sr.get(SystemKind::Baseline, EnvId::HomoA);
        assert_eq!(sr.memo.len(), 1, "second call must hit the memo");
        assert_eq!(a[0].worker_acc, b[0].worker_acc);
    }

    #[test]
    fn config_uses_paper_settings() {
        let sr = StandardRuns::new(&ExpOpts::full());
        let c = sr.config(SystemKind::DLion, 3);
        assert_eq!(c.seed, 3);
        assert_eq!(c.duration, 1500.0);
        assert_eq!(c.workload.train_size, 24_000);
    }

    #[test]
    fn summary_helpers() {
        let mk = |acc: f64| RunMetrics {
            eval_times: vec![100.0],
            worker_acc: vec![vec![acc, acc + 0.02]],
            ..Default::default()
        };
        let runs = vec![mk(0.5), mk(0.6)];
        let (mean, ci) = acc_final(&runs);
        assert!((mean - 0.56).abs() < 1e-9);
        assert!(ci > 0.0);
        assert!(time_to(&runs, 0.9).is_none());
        let (dev, _) = acc_deviation(&runs);
        assert!(dev > 0.0);
    }
}
