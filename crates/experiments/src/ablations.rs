//! Reproduction-specific ablations beyond the paper's own figures,
//! covering design choices DESIGN.md calls out: the DKT contribution inside
//! full DLion, and the sensitivity of the minimum-N floor (§5.1.4 sets it
//! to 0.85 without exploring it).

use crate::opts::ExpOpts;
use crate::output::{fmt_pm, Table};
use crate::standard::fan_cells;
use dlion_core::{DktConfig, RunConfig, SystemKind};
use dlion_microcloud::{ClusterKind, EnvId};
use dlion_tensor::stats;

fn base(opts: &ExpOpts, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::paper_default(SystemKind::DLion, ClusterKind::Cpu);
    cfg.seed = seed;
    cfg.duration = opts.dur(1500.0);
    cfg.workload.train_size = opts.train_size(24_000);
    cfg.workload.test_size = if opts.fast { 400 } else { 2000 };
    cfg.eval_subset = if opts.fast { 150 } else { 250 };
    cfg
}

/// All ablation/extension tables.
pub fn ablations(opts: &ExpOpts) -> Vec<Table> {
    vec![
        ablation_dkt(opts),
        ablation_min_n(opts),
        extension_prague(opts),
        extension_topology(opts),
    ]
}

/// Topology extension: DLion over sparse gossip graphs on the constrained
/// WAN — the figure-style sweep of topology vs. final loss vs. gradient
/// wire bytes (DESIGN.md §4i). Covers the static graphs and the rotating
/// schedules (k-regular gossip, Moshpit-style groups, hierarchical
/// aggregators).
pub fn extension_topology(opts: &ExpOpts) -> Table {
    use dlion_core::Topology;
    let mut t = Table::new(
        "extension_topology",
        "DLion over sparse communication topologies (Homo B, 1500 s)",
        &[
            "Topology",
            "Accuracy",
            "Final loss",
            "Gradient MB sent",
            "Iterations",
        ],
    );
    let topos = [
        Topology::FullMesh,
        Topology::Ring,
        Topology::Star { hub: 0 },
        Topology::KRegular { k: 2 },
        Topology::Groups { g: 2 },
        Topology::Hier { g: 2 },
    ];
    let mut cells = Vec::new();
    for topo in topos {
        for &seed in &opts.seeds {
            let mut cfg = base(opts, seed);
            cfg.topology = topo;
            dlion_telemetry::debug!(target: "experiments.progress","  running DLion on {} / seed {seed} ...", topo.name());
            cells.push((cfg, EnvId::HomoB));
        }
    }
    let metrics = fan_cells(&cells);
    for (topo, runs) in topos.into_iter().zip(metrics.chunks(opts.seeds.len())) {
        let mut accs = Vec::new();
        let mut losses = Vec::new();
        let mut bytes = Vec::new();
        let mut iters = Vec::new();
        for m in runs {
            accs.push(m.tail_mean_acc(3));
            losses.push(m.worker_loss.last().map_or(0.0, |row| stats::mean(row)));
            // Source the traffic from the wire ledger so the column matches
            // what `wire_bytes_by_kind` traces report, format for format.
            let grad_wire: f64 = m
                .wire_bytes_by_kind
                .iter()
                .filter(|(k, _)| k.starts_with("grad_"))
                .map(|(_, v)| v)
                .sum();
            bytes.push(grad_wire / 1e6);
            iters.push(m.total_iterations() as f64);
        }
        t.row(vec![
            topo.name(),
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
            format!("{:.3}", stats::mean(&losses)),
            format!("{:.0}", stats::mean(&bytes)),
            format!("{:.0}", stats::mean(&iters)),
        ]);
    }
    t
}

/// Scenario extension (DESIGN.md §4k): DLion under generated
/// production-shaped chaos. Every row expands one `--scenario` spec
/// against the Homo B cluster — the same strings (and therefore the
/// bit-identical fault/straggler plans) a live run would get, so the
/// table doubles as the sweep behind EXPERIMENTS.md's scenario section.
pub fn extension_scenario(opts: &ExpOpts) -> Table {
    use dlion_core::run_with_models;
    use dlion_core::scenario::{generate, ScenarioSpec};
    let mut t = Table::new(
        "extension_scenario",
        "DLion under generated chaos scenarios (Homo B, 1500 s)",
        &[
            "Scenario",
            "Accuracy",
            "Final loss",
            "Iterations",
            "Survivors",
        ],
    );
    let specs = [
        "none",
        "diurnal:600,0.5",
        "outage:Oregon@40",
        "spotstorm:2@30+60",
        "stragglers:2,2.5",
        "outage:Oregon@40/stragglers:1,3",
    ];
    let env = EnvId::HomoB.spec();
    let n = env.n_workers();
    let mut cells = Vec::new();
    for sc in specs {
        for &seed in &opts.seeds {
            let mut cfg = base(opts, seed);
            let mut survivors = n;
            let mut plan = None;
            if sc != "none" {
                let spec = ScenarioSpec::parse(sc).expect("sweep spec");
                // Same iteration-budget estimate the `dlion-sim` CLI
                // uses for duration-driven runs: ~2 s per round.
                let iters = ((cfg.duration / 2.0) as u64).max(2);
                let p = generate(&spec, n, seed, iters, cfg.duration).expect("sweep plan");
                survivors = n - p
                    .fault
                    .kills
                    .iter()
                    .filter(|k| k.rejoin_after.is_none())
                    .count();
                cfg.fault = p.fault.clone();
                cfg.straggle = p.straggle.clone();
                plan = Some(p);
            }
            dlion_telemetry::debug!(target: "experiments.progress",
                "  running DLion under scenario '{sc}' / seed {seed} ...");
            cells.push((sc, survivors, cfg, plan));
        }
    }
    let metrics = dlion_tensor::par::par_map(&cells, |(_, _, cfg, plan)| {
        // The resource models are rebuilt per cell (they are not
        // `Clone`): same env spec + same plan -> the same schedules.
        let mut compute = env.compute_model();
        let mut net = env.network_model();
        if let Some(p) = plan {
            p.apply_to_models(&mut compute, &mut net);
        }
        run_with_models(cfg, compute, net, env.name)
    });
    for (sc, runs) in specs.iter().zip(metrics.chunks(opts.seeds.len())) {
        let survivors = cells
            .iter()
            .find(|(c, ..)| c == sc)
            .map_or(n, |(_, s, ..)| *s);
        let mut accs = Vec::new();
        let mut losses = Vec::new();
        let mut iters = Vec::new();
        for m in runs {
            accs.push(m.tail_mean_acc(3));
            losses.push(m.worker_loss.last().map_or(0.0, |row| stats::mean(row)));
            iters.push(m.total_iterations() as f64);
        }
        t.row(vec![
            sc.to_string(),
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
            format!("{:.3}", stats::mean(&losses)),
            format!("{:.0}", stats::mean(&iters)),
            format!("{survivors}/{n}"),
        ]);
    }
    t
}

/// Prague extension (§6 related work): partial all-reduce with different
/// group sizes against DLion on a heterogeneous system.
fn extension_prague(opts: &ExpOpts) -> Table {
    let mut t = Table::new(
        "extension_prague",
        "Prague-style partial all-reduce vs. DLion on Hetero SYS A (1500 s)",
        &["System", "Accuracy", "Gradient MB sent"],
    );
    let systems = [
        SystemKind::Prague(2),
        SystemKind::Prague(3),
        SystemKind::Prague(6),
        SystemKind::DLion,
    ];
    let mut cells = Vec::new();
    for sys in systems {
        for &seed in &opts.seeds {
            let mut cfg = base(opts, seed);
            cfg.system = sys;
            if !sys.dkt() {
                cfg.dkt = DktConfig::off();
            }
            dlion_telemetry::debug!(target: "experiments.progress","  running {} / seed {seed} ...", sys.name());
            cells.push((cfg, EnvId::HeteroSysA));
        }
    }
    let metrics = fan_cells(&cells);
    for (sys, runs) in systems.into_iter().zip(metrics.chunks(opts.seeds.len())) {
        let mut accs = Vec::new();
        let mut bytes = Vec::new();
        for m in runs {
            accs.push(m.tail_mean_acc(3));
            bytes.push(m.grad_bytes / 1e6);
        }
        t.row(vec![
            sys.name(),
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
            format!("{:.0}", stats::mean(&bytes)),
        ]);
    }
    t
}

/// DLion with vs. without DKT, and the deviation across workers — isolates
/// the accuracy contribution of direct knowledge transfer inside the full
/// system.
fn ablation_dkt(opts: &ExpOpts) -> Table {
    let mut t = Table::new(
        "ablation_dkt",
        "DLion with/without direct knowledge transfer: accuracy and worker deviation after 1500 s",
        &[
            "Environment",
            "DLion acc",
            "DLion-no-DKT acc",
            "DLion dev",
            "no-DKT dev",
        ],
    );
    let envs = [EnvId::HomoB, EnvId::HeteroSysB];
    let mut cells = Vec::new();
    for env in envs {
        for &seed in &opts.seeds {
            let cfg_on = base(opts, seed);
            let mut cfg_off = base(opts, seed);
            cfg_off.dkt = DktConfig::off();
            dlion_telemetry::debug!(target: "experiments.progress","  running DKT ablation in {} / seed {seed} ...", env.name());
            cells.push((cfg_on, env));
            cells.push((cfg_off, env));
        }
    }
    let metrics = fan_cells(&cells);
    for (env, runs) in envs.into_iter().zip(metrics.chunks(2 * opts.seeds.len())) {
        let (mut a_on, mut a_off, mut d_on, mut d_off) = (vec![], vec![], vec![], vec![]);
        for pair in runs.chunks(2) {
            let (on, off) = (&pair[0], &pair[1]);
            a_on.push(on.tail_mean_acc(3));
            a_off.push(off.tail_mean_acc(3));
            d_on.push(on.final_acc_std());
            d_off.push(off.final_acc_std());
        }
        t.row(vec![
            env.name().to_string(),
            fmt_pm(stats::mean(&a_on), stats::ci95(&a_on)),
            fmt_pm(stats::mean(&a_off), stats::ci95(&a_off)),
            format!("{:.4}", stats::mean(&d_on)),
            format!("{:.4}", stats::mean(&d_off)),
        ]);
    }
    t
}

/// Sensitivity of the minimum-N floor on a heterogeneous network: too low
/// starves thin links of gradient signal, too high overloads them.
fn ablation_min_n(opts: &ExpOpts) -> Table {
    let mut t = Table::new(
        "ablation_min_n",
        "Sensitivity of the Max N minimum (paper: 0.85) on Hetero NET A",
        &["min N", "Accuracy", "Gradient MB sent"],
    );
    let floors = [0.085, 0.85, 8.5];
    let mut cells = Vec::new();
    for min_n in floors {
        for &seed in &opts.seeds {
            let mut cfg = base(opts, seed);
            cfg.min_n = min_n;
            dlion_telemetry::debug!(target: "experiments.progress","  running min_n {min_n} / seed {seed} ...");
            cells.push((cfg, EnvId::HeteroNetA));
        }
    }
    let metrics = fan_cells(&cells);
    for (min_n, runs) in floors.into_iter().zip(metrics.chunks(opts.seeds.len())) {
        let mut accs = Vec::new();
        let mut bytes = Vec::new();
        for m in runs {
            accs.push(m.tail_mean_acc(3));
            bytes.push(m.grad_bytes / 1e6);
        }
        t.row(vec![
            format!("{min_n}"),
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
            format!("{:.0}", stats::mean(&bytes)),
        ]);
    }
    t
}
