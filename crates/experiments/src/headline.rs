//! The headline comparison figures: DLion vs. Baseline/Ako/Gaia/Hop across
//! the Table 3 environments (Figures 11–18 and 21).

use crate::opts::ExpOpts;
use crate::output::{fmt_pm, fmt_time, Table};
use crate::standard::{acc_best, acc_deviation, acc_final, fan_cells, time_to, StandardRuns};
use dlion_core::{RunConfig, SystemKind};
use dlion_microcloud::{ClusterKind, EnvId};

fn env_comparison(
    id: &str,
    title: &str,
    envs: &[EnvId],
    systems: &[SystemKind],
    sr: &mut StandardRuns,
) -> Table {
    let mut headers = vec!["System".to_string()];
    headers.extend(envs.iter().map(|e| e.name().to_string()));
    let mut t = Table::new(
        id,
        title,
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &sys in systems {
        let mut row = vec![sys.name()];
        for &env in envs {
            let runs = sr.get(sys, env);
            let (m, ci) = acc_final(&runs);
            row.push(fmt_pm(m, ci));
        }
        t.row(row);
    }
    t
}

/// Figure 11: accuracy after 1500 s in Homo A / Hetero SYS A / Hetero SYS B
/// (CPU cluster).
pub fn fig11(_opts: &ExpOpts, sr: &mut StandardRuns) -> Table {
    env_comparison(
        "fig11",
        "Handling homogeneous and heterogeneous system (compute + network) environments, CPU cluster: accuracy after 1500 s",
        &[EnvId::HomoA, EnvId::HeteroSysA, EnvId::HeteroSysB],
        &SystemKind::headline(),
        sr,
    )
}

/// Figure 12: MobileNet on the GPU cluster, Homo C and Hetero SYS C.
///
/// The paper trains for 2 wall-clock hours; this reproduction compresses the
/// virtual duration to 250 s while preserving the compute-to-communication
/// ratio (see EXPERIMENTS.md "Calibration").
pub fn fig12(opts: &ExpOpts) -> Table {
    let systems = [
        SystemKind::Hop,
        SystemKind::Gaia,
        SystemKind::Ako,
        SystemKind::DLion,
    ];
    let envs = [EnvId::HomoC, EnvId::HeteroSysC];
    let mut t = Table::new(
        "fig12",
        "Heterogeneous GPU cluster (MobileNet): accuracy after the compressed 2-hour run",
        &["System", "Homo C", "Hetero SYS C"],
    );
    // Build the full (system x env x seed) grid, fan it over the pool, then
    // read the results back in the same nested order.
    let mut cells = Vec::new();
    for sys in systems {
        for env in envs {
            for &seed in &opts.seeds {
                let mut cfg = RunConfig::paper_default(sys, ClusterKind::Gpu);
                cfg.seed = seed;
                cfg.duration = opts.dur(250.0);
                cfg.workload.train_size = opts.train_size(24_000);
                cfg.workload.test_size = if opts.fast { 400 } else { 2000 };
                cfg.eval_interval = 25.0;
                cfg.eval_subset = if opts.fast { 150 } else { 250 };
                dlion_telemetry::debug!(target: "experiments.progress",
                    "  running {} / {} / seed {seed} (GPU) ...",
                    sys.name(),
                    env.name()
                );
                cells.push((cfg, env));
            }
        }
    }
    let metrics = fan_cells(&cells);
    let mut per_env = metrics.chunks(opts.seeds.len());
    for sys in systems {
        let mut row = vec![sys.name()];
        for _env in envs {
            let accs: Vec<f64> = per_env
                .next()
                .unwrap()
                .iter()
                .map(|m| m.tail_mean_acc(3))
                .collect();
            row.push(fmt_pm(
                dlion_tensor::stats::mean(&accs),
                dlion_tensor::stats::ci95(&accs),
            ));
        }
        t.row(row);
    }
    t
}

/// Figure 13: compute-only heterogeneity (Homo A / Hetero CPU A / Hetero CPU B).
pub fn fig13(_opts: &ExpOpts, sr: &mut StandardRuns) -> Table {
    env_comparison(
        "fig13",
        "Handling homogeneous and heterogeneous compute resource environments: accuracy after 1500 s",
        &[EnvId::HomoA, EnvId::HeteroCpuA, EnvId::HeteroCpuB],
        &SystemKind::headline(),
        sr,
    )
}

/// Figure 14: dynamic batching ablation — training time to the target
/// accuracy for DLion-no-DBWU / DLion-no-WU / DLion.
pub fn fig14(opts: &ExpOpts, sr: &mut StandardRuns) -> Table {
    // The paper targets 70% on CIFAR10; on the synthetic task the comparable
    // mid-training point (reached by the stronger variants within 1500 s,
    // like the paper's setup) is 50%.
    let target = if opts.fast { 0.30 } else { 0.50 };
    let systems = [
        SystemKind::DLionNoDbwu,
        SystemKind::DLionNoWu,
        SystemKind::DLion,
    ];
    let envs = [EnvId::HomoA, EnvId::HeteroCpuA, EnvId::HeteroCpuB];
    let mut t = Table::new(
        "fig14",
        &format!(
            "Effect of dynamic batching (DB) and weighted updates (WU): time (s) to {:.0}% accuracy (lower is better)",
            target * 100.0
        ),
        &["System", "Homo A", "Hetero CPU A", "Hetero CPU B"],
    );
    for sys in systems {
        let mut row = vec![sys.name()];
        for env in envs {
            let runs = sr.get(sys, env);
            row.push(fmt_time(time_to(&runs, target)));
        }
        t.row(row);
    }
    t
}

/// Figure 15: network-only heterogeneity (Homo A / Homo B / Hetero NET A).
pub fn fig15(_opts: &ExpOpts, sr: &mut StandardRuns) -> Table {
    env_comparison(
        "fig15",
        "Handling homogeneous and heterogeneous network resource environments: accuracy after 1500 s",
        &[EnvId::HomoA, EnvId::HomoB, EnvId::HeteroNetA],
        &SystemKind::headline(),
        sr,
    )
}

/// Figure 16: Max N (N = 10) alone vs. the existing systems.
pub fn fig16(_opts: &ExpOpts, sr: &mut StandardRuns) -> Table {
    env_comparison(
        "fig16",
        "Max10 alone (no DB/WU/DKT) vs. existing systems: accuracy after 1500 s",
        &[EnvId::HomoB, EnvId::HeteroSysA],
        &[
            SystemKind::Baseline,
            SystemKind::Hop,
            SystemKind::Gaia,
            SystemKind::Ako,
            SystemKind::MaxNOnly(10.0),
        ],
        sr,
    )
}

/// Figure 17: deviation of model accuracy among workers.
pub fn fig17(_opts: &ExpOpts, sr: &mut StandardRuns) -> Table {
    let envs = [EnvId::HeteroSysB, EnvId::HeteroNetB, EnvId::HeteroCpuB];
    let mut t = Table::new(
        "fig17",
        "Std-dev of accuracy across workers after 1500 s (lower is better)",
        &["System", "Hetero SYS B", "Hetero NET B", "Hetero CPU B"],
    );
    for sys in SystemKind::headline() {
        let mut row = vec![sys.name()];
        for env in envs {
            let runs = sr.get(sys, env);
            let (m, ci) = acc_deviation(&runs);
            row.push(fmt_pm(m, ci));
        }
        t.row(row);
    }
    t
}

/// Figure 18: dynamically changing resources (Dynamic SYS A / B) — highest
/// accuracy reached.
pub fn fig18(_opts: &ExpOpts, sr: &mut StandardRuns) -> Table {
    let mut t = Table::new(
        "fig18",
        "Highest accuracy under dynamically changing resources (1500 s)",
        &["System", "Dynamic SYS A", "Dynamic SYS B"],
    );
    for sys in SystemKind::headline() {
        let mut row = vec![sys.name()];
        for env in [EnvId::DynamicSysA, EnvId::DynamicSysB] {
            let runs = sr.get(sys, env);
            let (m, ci) = acc_best(&runs);
            row.push(fmt_pm(m, ci));
        }
        t.row(row);
    }
    t
}

/// Figure 21: highest accuracy and time to convergence in Homo A.
pub fn fig21(opts: &ExpOpts) -> Table {
    let mut t = Table::new(
        "fig21",
        "Highest model accuracy and training time until full convergence (Homo A)",
        &["System", "Best accuracy", "Convergence time (s)"],
    );
    let mut cells = Vec::new();
    for sys in SystemKind::headline() {
        for &seed in &opts.seeds {
            let mut cfg = RunConfig::paper_default(sys, ClusterKind::Cpu);
            cfg.seed = seed;
            cfg.duration = opts.dur(5000.0);
            cfg.workload.train_size = opts.train_size(24_000);
            cfg.workload.test_size = if opts.fast { 400 } else { 2000 };
            cfg.eval_subset = if opts.fast { 150 } else { 250 };
            cfg.converge = Some(dlion_core::config::ConvergenceCfg {
                window_secs: opts.dur(600.0),
                min_improvement: 0.003,
                min_secs: opts.dur(1000.0),
            });
            dlion_telemetry::debug!(target: "experiments.progress",
                "  running {} / Homo A to convergence / seed {seed} ...",
                sys.name()
            );
            cells.push((cfg, EnvId::HomoA));
        }
    }
    let metrics = fan_cells(&cells);
    for (sys, runs) in SystemKind::headline()
        .into_iter()
        .zip(metrics.chunks(opts.seeds.len()))
    {
        let mut best = Vec::new();
        let mut times = Vec::new();
        for m in runs {
            best.push(m.best_mean_acc());
            times.push(m.converged_at.unwrap_or(m.duration));
        }
        t.row(vec![
            sys.name(),
            fmt_pm(
                dlion_tensor::stats::mean(&best),
                dlion_tensor::stats::ci95(&best),
            ),
            format!("{:.0}", dlion_tensor::stats::mean(&times)),
        ]);
    }
    t
}
