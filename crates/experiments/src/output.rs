//! Console tables and CSV files.

use std::fs;
use std::path::Path;

/// One paper-style table: headers plus string rows, printed to the console
/// and persisted as CSV.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "fig11" (used as the CSV file name).
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (used to assemble
    /// EXPERIMENTS.md mechanically from the results).
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            s.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        s
    }

    /// Write `<dir>/<id>.csv` (quoting cells that contain commas).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut s = String::new();
        s.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        fs::write(dir.join(format!("{}.csv", self.id)), s)
    }
}

/// `mean ±ci` formatting (ci omitted when 0, i.e. a single seed).
pub fn fmt_pm(mean: f64, ci: f64) -> String {
    if ci > 0.0 {
        format!("{mean:.3} ±{ci:.3}")
    } else {
        format!("{mean:.3}")
    }
}

/// Format an optional time-to-target.
pub fn fmt_time(t: Option<f64>) -> String {
    match t {
        Some(v) => format!("{v:.0}"),
        None => "not reached".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("figX", "Demo", &["System", "Accuracy"]);
        t.row(vec!["DLion".into(), "0.712".into()]);
        t.row(vec!["Baseline".into(), "0.401".into()]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let s = table().render();
        assert!(s.contains("figX"));
        assert!(s.contains("System"));
        assert!(s.contains("DLion"));
        assert!(s.contains("0.401"));
    }

    #[test]
    fn markdown_rendering() {
        let md = table().to_markdown();
        assert!(md.starts_with("### figX"));
        assert!(md.contains("| System | Accuracy |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| DLion | 0.712 |"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("dlion-test-csv");
        table().write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("System,Accuracy"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("q", "t", &["a"]);
        t.row(vec!["x,y".into()]);
        let dir = std::env::temp_dir().join("dlion-test-csv2");
        t.write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(dir.join("q.csv")).unwrap();
        assert!(s.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = table();
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_pm(0.5, 0.0), "0.500");
        assert_eq!(fmt_pm(0.5, 0.012), "0.500 ±0.012");
        assert_eq!(fmt_time(Some(123.4)), "123");
        assert_eq!(fmt_time(None), "not reached");
    }
}
