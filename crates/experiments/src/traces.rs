//! The adaptive-behaviour trace figures: per-link partial-gradient sizes
//! (Figures 8 and 20) and LBS adaptation under dynamic compute (Figure 19).

use crate::opts::ExpOpts;
use crate::output::Table;
use dlion_core::{run_with_models, RunConfig, RunMetrics, SystemKind};
use dlion_microcloud::{
    ClusterKind, CPU_COST_PER_SAMPLE, CPU_OVERHEAD, LAN_LATENCY, LAN_MBPS, WAN_LATENCY,
};
use dlion_simnet::{ComputeModel, NetworkModel, PiecewiseConst};

fn trace_cfg(opts: &ExpOpts, duration: f64) -> RunConfig {
    let mut cfg = RunConfig::paper_default(SystemKind::DLion, ClusterKind::Cpu);
    cfg.duration = opts.dur(duration);
    cfg.workload.train_size = opts.train_size(24_000);
    cfg.trace_links = true;
    cfg
}

/// Mean gradient entries per message on link `src→dst` within `[t0, t1)`.
fn mean_entries(m: &RunMetrics, src: usize, dst: usize, t0: f64, t1: f64) -> Option<f64> {
    let xs: Vec<f64> = m
        .link_trace
        .iter()
        .filter(|s| s.src == src && s.dst == dst && s.time >= t0 && s.time < t1)
        .map(|s| s.entries as f64)
        .collect();
    if xs.is_empty() {
        None
    } else {
        Some(dlion_tensor::stats::mean(&xs))
    }
}

/// Figure 8: with two links of different (static) bandwidth out of the same
/// worker, per-link prioritized gradient exchange sends different gradient
/// sizes (worker0→worker2 fast vs. worker0→worker4 slow).
pub fn fig8(opts: &ExpOpts) -> Table {
    let cfg = trace_cfg(opts, 600.0);
    let compute = ComputeModel::homogeneous(6, 24.0, CPU_COST_PER_SAMPLE, CPU_OVERHEAD);
    let mut net = NetworkModel::uniform(6, 100.0, WAN_LATENCY);
    // Two observed links with a 4x bandwidth gap.
    net.set_link(0, 2, PiecewiseConst::constant(100.0));
    net.set_link(0, 4, PiecewiseConst::constant(25.0));
    dlion_telemetry::debug!(target: "experiments.progress","  running per-link gradient size trace (static bandwidths) ...");
    let m = run_with_models(&cfg, compute, net, "fig8 custom");
    let mut t = Table::new(
        "fig8",
        "Partial gradient size per link under different static bandwidths (w0->w2 @100 Mbps vs. w0->w4 @25 Mbps)",
        &["window (s)", "entries w0->w2 (100 Mbps)", "entries w0->w4 (25 Mbps)"],
    );
    let step = cfg.duration / 6.0;
    for k in 0..6 {
        let (t0, t1) = (k as f64 * step, (k + 1) as f64 * step);
        let fast = mean_entries(&m, 0, 2, t0, t1);
        let slow = mean_entries(&m, 0, 4, t0, t1);
        t.row(vec![
            format!("{t0:.0}-{t1:.0}"),
            fast.map_or("-".into(), |v| format!("{v:.0}")),
            slow.map_or("-".into(), |v| format!("{v:.0}")),
        ]);
    }
    t
}

/// Figure 19: LBS adaptation when available compute changes over time, with
/// GBS pinned to 192 (the paper's setting). Cores: homogeneous 24 (0–100 s),
/// hetero 24/24/12/12/4/4 (100–300 s), homogeneous 12 (300–500 s), reversed
/// hetero 4/4/12/12/24/24 (500–800 s).
pub fn fig19(opts: &ExpOpts) -> Table {
    let mut cfg = trace_cfg(opts, 800.0);
    cfg.trace_links = false;
    cfg.profile_interval = 20.0;
    // Pin GBS to 192 by making the controller start past its speed-up cap:
    // caps are fractions of the training set, so shrink them.
    cfg.gbs.warmup_cap_frac = 0.001;
    cfg.gbs.speedup_cap_frac = 0.002;
    let sched = |vals: [f64; 4]| {
        PiecewiseConst::steps(vec![
            (0.0, vals[0]),
            (opts.dur(800.0) * 0.125, vals[1]),
            (opts.dur(800.0) * 0.375, vals[2]),
            (opts.dur(800.0) * 0.625, vals[3]),
        ])
    };
    let caps = vec![
        sched([24.0, 24.0, 12.0, 4.0]),
        sched([24.0, 24.0, 12.0, 4.0]),
        sched([24.0, 12.0, 12.0, 12.0]),
        sched([24.0, 12.0, 12.0, 12.0]),
        sched([24.0, 4.0, 12.0, 24.0]),
        sched([24.0, 4.0, 12.0, 24.0]),
    ];
    let compute = ComputeModel::new(caps, CPU_COST_PER_SAMPLE, CPU_OVERHEAD);
    let net = NetworkModel::uniform(6, LAN_MBPS, LAN_LATENCY);
    dlion_telemetry::debug!(target: "experiments.progress","  running LBS adaptation trace (dynamic cores, GBS pinned) ...");
    let m = run_with_models(&cfg, compute, net, "fig19 custom");
    let mut t = Table::new(
        "fig19",
        "Dynamic LBS assignment under changing compute capacity (GBS fixed at 192)",
        &["time (s)", "w0", "w1", "w2", "w3", "w4", "w5", "sum"],
    );
    for (time, parts) in &m.lbs_trace {
        let mut row = vec![format!("{time:.0}")];
        row.extend(parts.iter().map(|p| p.to_string()));
        row.push(parts.iter().sum::<usize>().to_string());
        t.row(row);
    }
    t
}

/// Figure 20: partial gradient size adapting to dynamically changing
/// bandwidth: 30 Mbps for 0–100 s and 600–1000 s, 100 Mbps in between.
pub fn fig20(opts: &ExpOpts) -> Table {
    let cfg = trace_cfg(opts, 1000.0);
    let d = cfg.duration;
    let compute = ComputeModel::homogeneous(6, 24.0, CPU_COST_PER_SAMPLE, CPU_OVERHEAD);
    let mut net = NetworkModel::uniform(6, 100.0, WAN_LATENCY);
    let dynamic = PiecewiseConst::steps(vec![(0.0, 30.0), (d * 0.1, 100.0), (d * 0.6, 30.0)]);
    // All links out of worker 0 follow the dynamic schedule.
    for j in 1..6 {
        net.set_link(0, j, dynamic.clone());
    }
    dlion_telemetry::debug!(target: "experiments.progress","  running per-link gradient size trace (dynamic bandwidth) ...");
    let m = run_with_models(&cfg, compute, net, "fig20 custom");
    let mut t = Table::new(
        "fig20",
        "Partial gradient size adapting to dynamic bandwidth (30 Mbps in [0,10%) and [60%,100%), 100 Mbps otherwise)",
        &["window (s)", "bandwidth (Mbps)", "mean entries w0->w1"],
    );
    let step = d / 10.0;
    for k in 0..10 {
        let (t0, t1) = (k as f64 * step, (k + 1) as f64 * step);
        let bw = dynamic.value_at((t0 + t1) / 2.0);
        let e = mean_entries(&m, 0, 1, t0, t1);
        t.row(vec![
            format!("{t0:.0}-{t1:.0}"),
            format!("{bw:.0}"),
            e.map_or("-".into(), |v| format!("{v:.0}")),
        ]);
    }
    t
}
