//! Experiment harness options.

use std::path::PathBuf;

/// Global options shared by every experiment.
#[derive(Clone, Debug)]
pub struct ExpOpts {
    /// Seeds to average over (the paper reports the average of 3 runs with
    /// 95% confidence intervals; the default here is 1 seed to fit a
    /// single-core simulation budget — pass `--seeds 3` for paper-style
    /// averaging).
    pub seeds: Vec<u64>,
    /// Shrink all durations ~10× (smoke tests, benches).
    pub fast: bool,
    /// Where CSVs are written.
    pub results_dir: PathBuf,
}

impl ExpOpts {
    pub fn new(n_seeds: usize, fast: bool, results_dir: impl Into<PathBuf>) -> Self {
        assert!(n_seeds >= 1);
        ExpOpts {
            seeds: (1..=n_seeds as u64).collect(),
            fast,
            results_dir: results_dir.into(),
        }
    }

    /// Default full-fidelity options.
    pub fn full() -> Self {
        ExpOpts::new(1, false, "results")
    }

    /// Fast smoke-test options.
    pub fn fast() -> Self {
        ExpOpts::new(1, true, std::env::temp_dir().join("dlion-results"))
    }

    /// Scale a duration for fast mode.
    pub fn dur(&self, full: f64) -> f64 {
        if self.fast {
            (full / 10.0).max(60.0)
        } else {
            full
        }
    }

    /// Scale a training-set size for fast mode.
    pub fn train_size(&self, full: usize) -> usize {
        if self.fast {
            (full / 10).max(1200)
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_enumerated() {
        let o = ExpOpts::new(3, false, "x");
        assert_eq!(o.seeds, vec![1, 2, 3]);
    }

    #[test]
    fn fast_scaling() {
        let f = ExpOpts::fast();
        assert_eq!(f.dur(1500.0), 150.0);
        assert_eq!(f.dur(300.0), 60.0);
        assert_eq!(f.train_size(24_000), 2400);
        let full = ExpOpts::full();
        assert_eq!(full.dur(1500.0), 1500.0);
        assert_eq!(full.train_size(24_000), 24_000);
    }
}
