//! The paper's tables: Table 1 (lines of code per system inside the
//! framework), Table 2 (Amazon region bandwidths) and Table 3 (environment
//! matrix).

use crate::output::Table;
use dlion_microcloud::{EnvId, REGIONS, REGION_MBPS};

/// Count "real" lines of code in a strategy source file: everything before
/// the `#[cfg(test)]` module, excluding blanks, comments and doc comments.
pub fn strategy_loc(source: &str) -> usize {
    source
        .split("#[cfg(test)]")
        .next()
        .unwrap_or("")
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count()
}

/// Table 1: how many lines each comparison system needs inside the DLion
/// framework. The paper reports the LoC changed in its Python prototype's
/// `generate_partial_gradients` / `synch_training` APIs; here we report the
/// real LoC of each Rust `ExchangeStrategy` plugin (the `synch_training`
/// column is 0 for all systems because synchronization policies are shared
/// enum variants, mirroring the paper's reusable mechanisms).
pub fn table1() -> Table {
    let files = [
        (
            "Baseline",
            include_str!("../../core/src/strategy/baseline.rs"),
        ),
        ("Hop", include_str!("../../core/src/strategy/hop.rs")),
        ("Gaia", include_str!("../../core/src/strategy/gaia.rs")),
        ("Ako", include_str!("../../core/src/strategy/ako.rs")),
        ("DLion", include_str!("../../core/src/strategy/dlion.rs")),
        (
            "Max N only",
            include_str!("../../core/src/strategy/maxn_only.rs"),
        ),
        (
            "Prague (extension)",
            include_str!("../../core/src/strategy/prague.rs"),
        ),
    ];
    let mut t = Table::new(
        "table1",
        "Lines of code to implement each system as an ExchangeStrategy plugin",
        &["System", "Strategy plugin LoC", "synch_training LoC"],
    );
    for (name, src) in files {
        t.row(vec![
            name.to_string(),
            strategy_loc(src).to_string(),
            "0 (shared policy enum)".into(),
        ]);
    }
    t
}

/// Table 2: measured bandwidth between Amazon regions (Mbps).
pub fn table2() -> Table {
    let mut headers = vec!["(Mbps)"];
    headers.extend(REGIONS.iter().copied());
    let mut t = Table::new(
        "table2",
        "Measured bandwidth between six Amazon regions (Mbps), row = source",
        &headers,
    );
    for (i, row) in REGION_MBPS.iter().enumerate() {
        let mut cells = vec![REGIONS[i].to_string()];
        cells.extend(row.iter().enumerate().map(|(j, &v)| {
            if i == j {
                "-".to_string()
            } else {
                format!("{v:.0}")
            }
        }));
        t.row(cells);
    }
    t
}

/// Table 3: the emulated micro-cloud environments.
pub fn table3() -> Table {
    let mut t = Table::new(
        "table3",
        "Emulation details for micro-cloud environments (* = AWS GPU cluster)",
        &[
            "Environment",
            "Computation (capacity units at t=0)",
            "Network (Mbps per worker at t=0)",
            "LAN",
        ],
    );
    for id in EnvId::all() {
        let spec = id.spec();
        let caps: Vec<String> = spec
            .capacity
            .iter()
            .map(|c| format!("{:.0}", c.value_at(0.0)))
            .collect();
        let bws: Vec<String> = spec
            .worker_bw
            .iter()
            .map(|b| format!("{:.0}", b.value_at(0.0)))
            .collect();
        let star = if spec.cluster == dlion_microcloud::ClusterKind::Gpu {
            "*"
        } else {
            ""
        };
        t.row(vec![
            format!("{}{}", spec.name, star),
            caps.join("/"),
            bws.join("/"),
            if spec.lan { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counter_ignores_comments_and_tests() {
        let src = "// comment\n\npub fn f() {\n    1\n}\n\n#[cfg(test)]\nmod tests { fn x() {} }\n";
        assert_eq!(strategy_loc(src), 3);
    }

    #[test]
    fn table1_shows_small_plugins() {
        let t = table1();
        assert_eq!(t.rows.len(), 7);
        for r in &t.rows {
            let loc: usize = r[1].parse().unwrap();
            // Table 1's point: each system is tiny inside the framework.
            assert!(
                loc < 120,
                "{} is {loc} LoC — framework generality claim broken",
                r[0]
            );
            assert!(loc > 5);
        }
        // Baseline is the smallest system, as in the paper.
        let loc_of = |name: &str| -> usize {
            t.rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(loc_of("Baseline") <= loc_of("Ako"));
        assert!(loc_of("Baseline") <= loc_of("Gaia"));
    }

    #[test]
    fn table2_matches_paper_matrix() {
        let t = table2();
        assert_eq!(t.rows.len(), 6);
        // Virginia row: V -, O 190, I 181, M 53, S1 58, S2 56.
        assert_eq!(t.rows[0][1], "-");
        assert_eq!(t.rows[0][2], "190");
        assert_eq!(t.rows[0][4], "53");
    }

    #[test]
    fn table3_lists_all_envs() {
        let t = table3();
        assert_eq!(t.rows.len(), EnvId::all().len());
        let homo_a = &t.rows[0];
        assert!(homo_a[0].starts_with("Homo A"));
        assert_eq!(homo_a[1], "24/24/24/24/24/24");
        let sys_c = t
            .rows
            .iter()
            .find(|r| r[0].starts_with("Hetero SYS C"))
            .unwrap();
        assert!(sys_c[0].ends_with('*'), "GPU env must be starred");
        assert_eq!(sys_c[2], "190/190/140/140/100/100");
    }
}
