//! # dlion-experiments
//!
//! Regenerates every table and figure of the DLion paper's evaluation
//! (§5). Each experiment id maps to one function that runs the required
//! simulations and returns paper-style [`output::Table`]s, which the CLI
//! prints and writes as CSV under `results/`.
//!
//! Run `cargo run -p dlion-experiments --release -- all` (or a single id
//! like `fig11`). `--fast` shrinks durations ~10× for smoke testing;
//! `--seeds N` averages over N seeds (the paper averages 3 runs).

pub mod ablations;
pub mod explore;
pub mod headline;
pub mod opts;
pub mod output;
pub mod standard;
pub mod tables;
pub mod traces;
pub mod verdicts;

pub use opts::ExpOpts;
pub use output::Table;

/// All experiment ids, in paper order (plus reproduction-specific
/// ablations and, last, the shape-check verdicts over the written CSVs).
pub const ALL_IDS: [&str; 23] = [
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "table1",
    "table2",
    "table3",
    "ablations",
    "topology",
    "scenario",
    "verdicts",
];

/// An experiment session: shares the pool of memoized "standard" 1500 s
/// runs across figures (Figures 11/13/14/15/16/17/18 overlap heavily in
/// the `(system, environment, seed)` combinations they need).
pub struct Session {
    opts: ExpOpts,
    pool: standard::StandardRuns,
}

impl Session {
    pub fn new(opts: &ExpOpts) -> Self {
        Session {
            opts: opts.clone(),
            pool: standard::StandardRuns::new(opts),
        }
    }

    /// Run one experiment id. Panics on unknown ids (the CLI validates).
    pub fn run(&mut self, id: &str) -> Vec<Table> {
        let opts = &self.opts;
        match id {
            "fig5" => vec![explore::fig5(opts)],
            "fig6" => vec![explore::fig6(opts)],
            "fig7" => vec![explore::fig7(opts)],
            "fig8" => vec![traces::fig8(opts)],
            "fig9" => explore::fig9(opts),
            "fig11" => vec![headline::fig11(opts, &mut self.pool)],
            "fig12" => vec![headline::fig12(opts)],
            "fig13" => vec![headline::fig13(opts, &mut self.pool)],
            "fig14" => vec![headline::fig14(opts, &mut self.pool)],
            "fig15" => vec![headline::fig15(opts, &mut self.pool)],
            "fig16" => vec![headline::fig16(opts, &mut self.pool)],
            "fig17" => vec![headline::fig17(opts, &mut self.pool)],
            "fig18" => vec![headline::fig18(opts, &mut self.pool)],
            "fig19" => vec![traces::fig19(opts)],
            "fig20" => vec![traces::fig20(opts)],
            "fig21" => vec![headline::fig21(opts)],
            "table1" => vec![tables::table1()],
            "table2" => vec![tables::table2()],
            "table3" => vec![tables::table3()],
            "ablations" => ablations::ablations(opts),
            "topology" => vec![ablations::extension_topology(opts)],
            "scenario" => vec![ablations::extension_scenario(opts)],
            "verdicts" => vec![verdicts::verdicts(&opts.results_dir)],
            other => panic!("unknown experiment id: {other}"),
        }
    }
}

/// Dispatch one experiment id with a one-shot session.
pub fn run_experiment(id: &str, opts: &ExpOpts) -> Vec<Table> {
    Session::new(opts).run(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_reuses_standard_runs_across_figures() {
        // fig11 and fig13 share the (system, Homo A, seed) combinations;
        // a shared session must produce identical Homo A columns without
        // re-simulating (identical because memoized, not just determinism).
        let opts = ExpOpts::fast();
        let mut s = Session::new(&opts);
        let t11 = s.run("fig11").remove(0);
        let t13 = s.run("fig13").remove(0);
        let col = |t: &Table, sys: &str| -> String {
            t.rows.iter().find(|r| r[0] == sys).unwrap()[1].clone()
        };
        for sys in ["Baseline", "DLion"] {
            assert_eq!(col(&t11, sys), col(&t13, sys), "Homo A column for {sys}");
        }
    }

    #[test]
    fn all_ids_dispatch_static_tables() {
        // The data-only tables run instantly and must always succeed.
        let opts = ExpOpts::fast();
        for id in ["table1", "table2", "table3"] {
            let ts = run_experiment(id, &opts);
            assert!(!ts.is_empty());
            assert!(!ts[0].rows.is_empty(), "{id} produced no rows");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run_experiment("fig99", &ExpOpts::fast());
    }
}
