//! The exploratory studies of §3 (Figures 5–7 and 9): the empirical results
//! that motivated the GBS controller, Max N, and DKT designs.

use crate::opts::ExpOpts;
use crate::output::{fmt_pm, fmt_time, Table};
use crate::standard::fan_cells;
use dlion_core::config::ConvergenceCfg;
use dlion_core::{run_with_models, DktConfig, DktMode, RunConfig, SystemKind};
use dlion_microcloud::{
    ClusterKind, EnvId, CPU_COST_PER_SAMPLE, CPU_OVERHEAD, LAN_LATENCY, LAN_MBPS,
};
use dlion_nn::{Dataset, ModelSpec};
use dlion_simnet::{ComputeModel, NetworkModel};
use dlion_tensor::{stats, DetRng};

/// Figure 5: model accuracy after a fixed number of epochs, as GBS doubling
/// starts at different epochs. Reproduces the two findings behind the GBS
/// controller: doubling from epoch 0/1 hurts; from epoch ≥ 2 it is safe.
pub fn fig5(opts: &ExpOpts) -> Table {
    let train = opts.train_size(8_000);
    let test = 1_000;
    let epochs = if opts.fast { 5 } else { 15 };
    let initial_gbs = 192; // 6 workers x LBS 32
    let cap = train / 10; // the 10% rule
    let starts: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(4), Some(8), None];

    let mut t = Table::new(
        "fig5",
        &format!("Accuracy after {epochs} epochs as GBS is doubled starting at different epochs (6 workers, initial LBS 32)"),
        &["GBS doubling start epoch", "Final accuracy", "Total updates"],
    );
    for start in starts {
        let mut accs = Vec::new();
        let mut updates = 0usize;
        for &seed in &opts.seeds {
            let ds = Dataset::synth_vision(train + test, 7);
            let mut rng = DetRng::seed_from_u64(seed);
            let mut model = ModelSpec::Cipher.build(&ds.sample_shape(), ds.classes(), &mut rng);
            let test_idx: Vec<usize> = (train..train + 500).collect();
            let mut gbs = initial_gbs;
            updates = 0;
            for epoch in 0..epochs {
                // Double at the start of every epoch >= s, capped at 10% of
                // the training set (the speed-up rule's ceiling).
                if let Some(s) = start {
                    if epoch >= s {
                        gbs = (gbs * 2).min(cap.max(initial_gbs));
                    }
                }
                let iters = train.div_ceil(gbs);
                for _ in 0..iters {
                    let idx: Vec<usize> = (0..gbs).map(|_| rng.index(train)).collect();
                    let (x, y) = ds.batch(&idx);
                    let (_, grads) = model.forward_backward(&x, &y);
                    model.apply_dense_update(&grads, -0.3);
                    updates += 1;
                }
            }
            accs.push(model.evaluate(&ds, &test_idx, 125).accuracy);
        }
        let label = match start {
            Some(s) => format!("epoch {s}"),
            None => "never (fixed GBS)".to_string(),
        };
        t.row(vec![
            label,
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
            updates.to_string(),
        ]);
    }
    t
}

/// Figure 6: LBS per worker over time as the GBS controller grows the GBS in
/// a heterogeneous compute environment (cores 24/24/12/12/4/4).
pub fn fig6(opts: &ExpOpts) -> Table {
    let mut cfg = RunConfig::paper_default(SystemKind::DLion, ClusterKind::Cpu);
    cfg.duration = opts.dur(1000.0);
    cfg.workload.train_size = opts.train_size(24_000);
    cfg.profile_interval = 50.0;
    // Mirror the paper's Figure 6 cadence (GBS grows ~every 250 s).
    cfg.gbs.adjust_period_secs = 250.0;
    let compute = ComputeModel::heterogeneous(
        &[24.0, 24.0, 12.0, 12.0, 4.0, 4.0],
        CPU_COST_PER_SAMPLE,
        CPU_OVERHEAD,
    );
    let net = NetworkModel::uniform(6, LAN_MBPS, LAN_LATENCY);
    dlion_telemetry::debug!(target: "experiments.progress","  running DLion LBS trace (hetero cores 24/24/12/12/4/4) ...");
    let m = run_with_models(&cfg, compute, net, "Hetero cores 24/24/12/12/4/4");
    let mut t = Table::new(
        "fig6",
        "LBS adjustment per worker as GBS grows (hetero cores 24/24/12/12/4/4)",
        &["time (s)", "GBS", "w0", "w1", "w2", "w3", "w4", "w5"],
    );
    for (time, parts) in &m.lbs_trace {
        let gbs: usize = parts.iter().sum();
        let mut row = vec![format!("{time:.0}"), gbs.to_string()];
        row.extend(parts.iter().map(|p| p.to_string()));
        t.row(row);
    }
    t
}

/// Figure 7: final accuracy of Max N (integrated with DKT, homogeneous
/// cluster) for different fixed N values — larger N, higher accuracy.
pub fn fig7(opts: &ExpOpts) -> Table {
    let mut t = Table::new(
        "fig7",
        "Accuracy of Max N with different N values, trained to convergence (homogeneous environment)",
        &["N", "Best accuracy"],
    );
    let ns = [1.0, 10.0, 50.0, 100.0];
    let mut cells = Vec::new();
    for n in ns {
        for &seed in &opts.seeds {
            let mut cfg = RunConfig::paper_default(SystemKind::MaxNOnly(n), ClusterKind::Cpu);
            cfg.seed = seed;
            cfg.duration = opts.dur(2200.0);
            cfg.workload.train_size = opts.train_size(24_000);
            cfg.workload.test_size = if opts.fast { 400 } else { 2000 };
            cfg.eval_subset = if opts.fast { 150 } else { 250 };
            // "integrated with DLion": DKT stays on.
            cfg.dkt = DktConfig::default();
            cfg.converge = Some(ConvergenceCfg {
                window_secs: opts.dur(500.0),
                min_improvement: 0.004,
                min_secs: opts.dur(700.0),
            });
            dlion_telemetry::debug!(target: "experiments.progress","  running Max{n} to convergence / seed {seed} ...");
            cells.push((cfg, EnvId::HomoA));
        }
    }
    let metrics = fan_cells(&cells);
    for (n, runs) in ns.into_iter().zip(metrics.chunks(opts.seeds.len())) {
        let accs: Vec<f64> = runs.iter().map(|m| m.best_mean_acc()).collect();
        t.row(vec![
            format!("{n}"),
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
        ]);
    }
    t
}

/// Figure 9: the three DKT exploration studies.
pub fn fig9(opts: &ExpOpts) -> Vec<Table> {
    vec![fig9a(opts), fig9b(opts), fig9c(opts)]
}

fn base_dkt_cfg(opts: &ExpOpts, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::paper_default(SystemKind::DLion, ClusterKind::Cpu);
    cfg.seed = seed;
    cfg.duration = opts.dur(1500.0);
    cfg.workload.train_size = opts.train_size(24_000);
    cfg.workload.test_size = if opts.fast { 400 } else { 2000 };
    cfg.eval_subset = if opts.fast { 150 } else { 250 };
    cfg
}

/// Figure 9a: when-to-send — training time to the target accuracy vs. the
/// weight-exchange period.
fn fig9a(opts: &ExpOpts) -> Table {
    let target = if opts.fast { 0.30 } else { 0.55 };
    let mut t = Table::new(
        "fig9a",
        &format!(
            "DKT when-to-send: time (s) to {:.0}% accuracy vs. exchange period (Homo B)",
            target * 100.0
        ),
        &["Period (iterations)", "Time to target (s)"],
    );
    let periods = [10u64, 100, 500, 1000];
    let mut cells = Vec::new();
    for period in periods {
        for &seed in &opts.seeds {
            let mut cfg = base_dkt_cfg(opts, seed);
            cfg.duration = opts.dur(2000.0);
            cfg.dkt.period_iters = period;
            dlion_telemetry::debug!(target: "experiments.progress","  running DKT period {period} / seed {seed} ...");
            cells.push((cfg, EnvId::HomoB));
        }
    }
    let metrics = fan_cells(&cells);
    for (period, runs) in periods.into_iter().zip(metrics.chunks(opts.seeds.len())) {
        let mut times = Vec::new();
        let mut reached = true;
        for m in runs {
            match m.time_to_accuracy(target) {
                Some(tt) => times.push(tt),
                None => reached = false,
            }
        }
        t.row(vec![
            period.to_string(),
            if reached {
                fmt_time(Some(stats::mean(&times)))
            } else {
                fmt_time(None)
            },
        ]);
    }
    t
}

/// Figure 9b: whom-to-send — No_DKT vs. DKT_Best2worst vs. DKT_Best2all.
fn fig9b(opts: &ExpOpts) -> Table {
    let mut t = Table::new(
        "fig9b",
        "DKT whom-to-send: accuracy after 1500 s (Homo B)",
        &["Variant", "Final accuracy"],
    );
    let variants = [
        ("No_DKT", DktMode::Off),
        ("DKT_Best2worst", DktMode::Best2Worst),
        ("DKT_Best2all", DktMode::Best2All),
    ];
    let mut cells = Vec::new();
    for (label, mode) in variants {
        for &seed in &opts.seeds {
            let mut cfg = base_dkt_cfg(opts, seed);
            cfg.dkt.mode = mode;
            dlion_telemetry::debug!(target: "experiments.progress","  running {label} / seed {seed} ...");
            cells.push((cfg, EnvId::HomoB));
        }
    }
    let metrics = fan_cells(&cells);
    for ((label, _), runs) in variants.into_iter().zip(metrics.chunks(opts.seeds.len())) {
        let accs: Vec<f64> = runs.iter().map(|m| m.tail_mean_acc(3)).collect();
        t.row(vec![
            label.to_string(),
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
        ]);
    }
    t
}

/// Figure 9c: how-to-merge — the λ sweep.
fn fig9c(opts: &ExpOpts) -> Table {
    let mut t = Table::new(
        "fig9c",
        "DKT how-to-merge: accuracy after 1500 s vs. merge ratio λ (Homo B)",
        &["lambda", "Final accuracy"],
    );
    let lambdas = [0.0f32, 0.25, 0.5, 0.75, 1.0];
    let mut cells = Vec::new();
    for lambda in lambdas {
        for &seed in &opts.seeds {
            let mut cfg = base_dkt_cfg(opts, seed);
            cfg.dkt.lambda = lambda;
            if lambda == 0.0 {
                // λ = 0 is No_DKT; skip the useless weight traffic.
                cfg.dkt.mode = DktMode::Off;
            }
            dlion_telemetry::debug!(target: "experiments.progress","  running lambda {lambda} / seed {seed} ...");
            cells.push((cfg, EnvId::HomoB));
        }
    }
    let metrics = fan_cells(&cells);
    for (lambda, runs) in lambdas.into_iter().zip(metrics.chunks(opts.seeds.len())) {
        let accs: Vec<f64> = runs.iter().map(|m| m.tail_mean_acc(3)).collect();
        t.row(vec![
            format!("{lambda}"),
            fmt_pm(stats::mean(&accs), stats::ci95(&accs)),
        ]);
    }
    t
}
