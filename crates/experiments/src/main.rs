//! CLI for regenerating the DLion paper's tables and figures.
//!
//! ```text
//! experiments [--seeds N] [--fast] [--out DIR] [--md FILE] <id> [<id> ...] | all | list
//! ```
//!
//! `--md FILE` additionally appends every produced table as GitHub-flavoured
//! markdown to FILE (used to assemble EXPERIMENTS.md).

use dlion_experiments::{ExpOpts, Session, ALL_IDS};
use dlion_telemetry::{info, warn};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--seeds N] [--fast] [--out DIR] <id> [<id> ...]\n\
         ids: {} | all | list",
        ALL_IDS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    // Progress goes through leveled stderr logging (`DLION_LOG` overrides;
    // default info) — stdout stays reserved for the rendered tables.
    dlion_telemetry::init_from_env("info");
    let mut seeds = 1usize;
    let mut fast = false;
    let mut out = "results".to_string();
    let mut md: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fast" => fast = true,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--md" => md = Some(args.next().unwrap_or_else(|| usage())),
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => ids.push(id.to_string()),
            _ => usage(),
        }
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();

    let opts = ExpOpts::new(seeds, fast, &out);
    let mut session = Session::new(&opts);
    let total = Instant::now();
    for id in &ids {
        let started = Instant::now();
        info!(target: "experiments", "=== {id} ===");
        let tables = session.run(id);
        for t in &tables {
            println!("{}", t.render());
            if let Err(e) = t.write_csv(&opts.results_dir) {
                warn!(target: "experiments", "could not write {}.csv: {e}", t.id);
            }
            if let Some(path) = &md {
                use std::io::Write;
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .expect("open markdown report");
                writeln!(f, "{}", t.to_markdown()).expect("write markdown report");
            }
        }
        info!(target: "experiments",
            "=== {id} done in {:.1}s ===",
            started.elapsed().as_secs_f64()
        );
    }
    info!(target: "experiments",
        "all done in {:.1}s; CSVs in {}",
        total.elapsed().as_secs_f64(),
        out
    );
}
