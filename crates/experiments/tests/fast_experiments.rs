//! Smoke tests for the experiment harness: the cheap experiments run
//! end-to-end in fast mode and produce sane, well-formed tables.

use dlion_experiments::{run_experiment, ExpOpts};

fn fast() -> ExpOpts {
    ExpOpts::fast()
}

#[test]
fn fig6_lbs_trace_rows_are_consistent() {
    let t = &run_experiment("fig6", &fast())[0];
    assert!(!t.rows.is_empty(), "no LBS trace rows");
    for row in &t.rows {
        // time, GBS, then 6 per-worker LBS columns.
        assert_eq!(row.len(), 8);
        let gbs: usize = row[1].parse().unwrap();
        let sum: usize = row[2..8].iter().map(|c| c.parse::<usize>().unwrap()).sum();
        assert_eq!(sum, gbs, "ΣLBS must equal GBS in {row:?}");
        // Heterogeneous cores 24/24/12/12/4/4: w0 >= w2 >= w4.
        let w0: usize = row[2].parse().unwrap();
        let w2: usize = row[4].parse().unwrap();
        let w4: usize = row[6].parse().unwrap();
        assert!(w0 >= w2 && w2 >= w4, "LBS must track capacity: {row:?}");
    }
}

#[test]
fn fig8_thin_link_carries_fewer_entries() {
    let t = &run_experiment("fig8", &fast())[0];
    let mut fast_total = 0.0;
    let mut slow_total = 0.0;
    let mut n = 0.0;
    for row in &t.rows {
        if let (Ok(f), Ok(s)) = (row[1].parse::<f64>(), row[2].parse::<f64>()) {
            fast_total += f;
            slow_total += s;
            n += 1.0;
        }
    }
    assert!(n > 0.0, "no numeric windows in fig8");
    assert!(
        fast_total / n > 1.5 * (slow_total / n),
        "100 Mbps link should carry much more than 25 Mbps link: {} vs {}",
        fast_total / n,
        slow_total / n
    );
}

#[test]
fn fig20_entries_track_bandwidth_steps() {
    let t = &run_experiment("fig20", &fast())[0];
    // Average entries in 30 Mbps windows vs 100 Mbps windows.
    let (mut lo, mut hi, mut nlo, mut nhi) = (0.0, 0.0, 0.0, 0.0);
    for row in &t.rows {
        let bw: f64 = row[1].parse().unwrap();
        if let Ok(e) = row[2].parse::<f64>() {
            if bw < 50.0 {
                lo += e;
                nlo += 1.0;
            } else {
                hi += e;
                nhi += 1.0;
            }
        }
    }
    assert!(nlo > 0.0 && nhi > 0.0, "need windows at both bandwidths");
    assert!(
        hi / nhi > 1.3 * (lo / nlo),
        "entries must grow with bandwidth: {} @100 vs {} @30",
        hi / nhi,
        lo / nlo
    );
}

#[test]
fn fig19_lbs_adapts_to_core_changes() {
    let t = &run_experiment("fig19", &fast())[0];
    assert!(t.rows.len() >= 4);
    // GBS pinned: every row sums to the same total.
    let sums: Vec<usize> = t.rows.iter().map(|r| r[7].parse().unwrap()).collect();
    assert!(
        sums.windows(2).all(|w| w[0] == w[1]),
        "GBS must stay pinned: {sums:?}"
    );
    // In the last phase workers 4/5 have 24 cores and workers 0/1 have 4:
    // the shares must skew toward the now-fast workers.
    let last = t.rows.last().unwrap();
    let w0: usize = last[1].parse().unwrap();
    let w4: usize = last[5].parse().unwrap();
    assert!(w4 > 2 * w0, "final phase 24-core vs 4-core share: {last:?}");
}

#[test]
fn tables_render_and_write_csv() {
    let opts = fast();
    for id in ["table1", "table2", "table3"] {
        let tables = run_experiment(id, &opts);
        for t in &tables {
            let rendered = t.render();
            assert!(rendered.contains(&t.id));
            t.write_csv(&opts.results_dir).unwrap();
            let path = opts.results_dir.join(format!("{}.csv", t.id));
            assert!(path.exists());
        }
    }
}
