//! Tracing must be a pure observer: running an experiment with a JSONL
//! trace sink installed must produce byte-identical figure CSVs to running
//! it with tracing off, and every emitted record must carry the full
//! schema.

use dlion_experiments::{run_experiment, ExpOpts};
use dlion_telemetry::json::{self, Json};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A trace sink capturing everything into a shared buffer.
#[derive(Clone)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const REQUIRED_KEYS: [&str; 9] = [
    "wall_ns", "vtime", "seq", "system", "env", "seed", "worker", "kind", "fields",
];

fn fig_csvs(dir: &std::path::Path, opts: &ExpOpts, id: &str) -> Vec<(String, Vec<u8>)> {
    let tables = run_experiment(id, opts);
    let mut out = Vec::new();
    for t in &tables {
        t.write_csv(dir).unwrap();
        let path = dir.join(format!("{}.csv", t.id));
        out.push((t.id.clone(), std::fs::read(&path).unwrap()));
    }
    out
}

#[test]
fn tracing_does_not_change_figure_csvs() {
    let base = std::env::temp_dir().join("dlion-trace-determinism");
    let off_dir = base.join("off");
    let on_dir = base.join("on");
    std::fs::create_dir_all(&off_dir).unwrap();
    std::fs::create_dir_all(&on_dir).unwrap();

    let mut opts = ExpOpts::fast();
    opts.results_dir = off_dir.clone();
    let off = fig_csvs(&off_dir, &opts, "fig6");

    // Second run with a live JSONL sink capturing every record.
    let sink = SharedSink(Arc::new(Mutex::new(Vec::new())));
    dlion_telemetry::set_trace_writer(Box::new(sink.clone()));
    opts.results_dir = on_dir.clone();
    let on = fig_csvs(&on_dir, &opts, "fig6");
    dlion_telemetry::stop_trace();

    assert_eq!(off.len(), on.len());
    for ((id_off, bytes_off), (id_on, bytes_on)) in off.iter().zip(on.iter()) {
        assert_eq!(id_off, id_on);
        assert_eq!(
            bytes_off, bytes_on,
            "{id_off}.csv must be byte-identical with tracing on vs off"
        );
    }

    // The trace itself must be non-trivial and schema-complete.
    let buf = sink.0.lock().unwrap();
    let text = String::from_utf8(buf.clone()).unwrap();
    let mut records = 0usize;
    let mut saw_iter = false;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line: {e}\n{line}"));
        assert!(matches!(v, Json::Obj(_)), "record must be an object");
        for key in REQUIRED_KEYS {
            assert!(v.get(key).is_some(), "record missing {key:?}: {line}");
        }
        if v.get("kind").unwrap().as_str() == Some("iter_done") {
            saw_iter = true;
            assert!(
                v.get("system").unwrap().as_str().is_some(),
                "in-run records must carry the run's system"
            );
        }
        records += 1;
    }
    assert!(records > 100, "trace too small: {records} records");
    assert!(saw_iter, "no iter_done records in the trace");
}
