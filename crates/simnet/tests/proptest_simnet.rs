//! Property-based tests for the discrete-event substrate.

use dlion_simnet::{ComputeModel, EventQueue, NetworkModel, PiecewiseConst};
use proptest::prelude::*;

fn schedule_strategy() -> impl Strategy<Value = PiecewiseConst> {
    prop::collection::vec(0.1f64..100.0, 1..8).prop_map(|vals| {
        let points = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * 50.0, v))
            .collect();
        PiecewiseConst::steps(points)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Integration is additive over adjacent intervals.
    #[test]
    fn integrate_additive(sched in schedule_strategy(),
                          t0 in 0.0f64..500.0, a in 0.0f64..200.0, b in 0.0f64..200.0) {
        let whole = sched.integrate(t0, a + b);
        let split = sched.integrate(t0, a) + sched.integrate(t0 + a, b);
        prop_assert!((whole - split).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    /// time_to_accumulate inverts integrate.
    #[test]
    fn accumulate_inverts_integrate(sched in schedule_strategy(),
                                    t0 in 0.0f64..500.0, amount in 0.0f64..10_000.0) {
        let dt = sched.time_to_accumulate(t0, amount);
        prop_assume!(dt.is_finite());
        let got = sched.integrate(t0, dt);
        prop_assert!((got - amount).abs() < 1e-6 * (1.0 + amount));
    }

    /// min_with is pointwise min at arbitrary times.
    #[test]
    fn min_with_pointwise(a in schedule_strategy(), b in schedule_strategy(),
                          ts in prop::collection::vec(0.0f64..600.0, 1..20)) {
        let m = a.min_with(&b);
        for t in ts {
            prop_assert_eq!(m.value_at(t), a.value_at(t).min(b.value_at(t)));
        }
    }

    /// Transfers: arrival >= depart >= enqueue time; same-sender transfers
    /// never overlap (FIFO NIC); more bytes never arrive earlier.
    #[test]
    fn transfer_ordering(bytes in prop::collection::vec(1.0f64..5e6, 1..20),
                         mbps in 1.0f64..1000.0, latency in 0.0f64..0.2) {
        let mut net = NetworkModel::uniform(3, mbps, latency);
        let mut now = 0.0;
        let mut last_send_done = 0.0;
        for (i, &b) in bytes.iter().enumerate() {
            let dst = 1 + (i % 2);
            let tr = net.transfer(0, dst, b, now);
            prop_assert!(tr.depart >= now - 1e-9);
            prop_assert!(tr.depart >= last_send_done - 1e-9, "NIC FIFO violated");
            prop_assert!(tr.arrival >= tr.depart + latency - 1e-9);
            last_send_done = tr.arrival - latency;
            now += 0.01;
        }
    }

    #[test]
    fn bigger_transfers_take_longer(b1 in 1.0f64..1e7, factor in 1.0f64..10.0,
                                    mbps in 1.0f64..1000.0) {
        let mut n1 = NetworkModel::uniform(2, mbps, 0.0);
        let mut n2 = NetworkModel::uniform(2, mbps, 0.0);
        let t1 = n1.transfer(0, 1, b1, 0.0);
        let t2 = n2.transfer(0, 1, b1 * factor, 0.0);
        prop_assert!(t2.arrival >= t1.arrival - 1e-12);
    }

    /// Iteration time is monotone in LBS and antitone in capacity, for any
    /// batch exponent.
    #[test]
    fn iter_time_monotonicity(cap in 1.0f64..400.0, beta in 0.2f64..1.0,
                              lbs in 1usize..2000) {
        let cm = ComputeModel::homogeneous(1, cap, 1.8, 0.1).with_batch_exponent(beta);
        let t = cm.iter_time(0, lbs, 0.0);
        let t_more = cm.iter_time(0, lbs + 1, 0.0);
        prop_assert!(t_more >= t);
        let cm_fast = ComputeModel::homogeneous(1, cap * 2.0, 1.8, 0.1).with_batch_exponent(beta);
        prop_assert!(cm_fast.iter_time(0, lbs, 0.0) <= t);
    }

    /// The event queue is a stable priority queue: output times are sorted,
    /// and equal times preserve insertion order.
    #[test]
    fn event_queue_stable_sort(times in prop::collection::vec(0.0f64..100.0, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            // Quantize times to force ties.
            q.schedule(t.round(), i);
        }
        let mut prev_time = f64::NEG_INFINITY;
        let mut prev_seq_at_time = None::<usize>;
        while let Some((t, seq)) = q.pop() {
            prop_assert!(t >= prev_time);
            if t == prev_time {
                prop_assert!(seq > prev_seq_at_time.unwrap(), "tie order violated");
            }
            prev_time = t;
            prev_seq_at_time = Some(seq);
        }
    }
}
