//! Property-based tests for the discrete-event substrate, driven by seeded
//! pseudo-random cases.

use dlion_simnet::{ComputeModel, EventQueue, NetworkModel, PiecewiseConst};
use dlion_tensor::DetRng;

fn schedule(rng: &mut DetRng) -> PiecewiseConst {
    let len = 1 + rng.index(7);
    let points = (0..len)
        .map(|i| (i as f64 * 50.0, rng.uniform_range(0.1, 100.0)))
        .collect();
    PiecewiseConst::steps(points)
}

/// Integration is additive over adjacent intervals.
#[test]
fn integrate_additive() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(100 + case);
        let sched = schedule(&mut rng);
        let t0 = rng.uniform_range(0.0, 500.0);
        let a = rng.uniform_range(0.0, 200.0);
        let b = rng.uniform_range(0.0, 200.0);
        let whole = sched.integrate(t0, a + b);
        let split = sched.integrate(t0, a) + sched.integrate(t0 + a, b);
        assert!(
            (whole - split).abs() < 1e-6 * (1.0 + whole.abs()),
            "case {case}: {whole} vs {split}"
        );
    }
}

/// time_to_accumulate inverts integrate.
#[test]
fn accumulate_inverts_integrate() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(1100 + case);
        let sched = schedule(&mut rng);
        let t0 = rng.uniform_range(0.0, 500.0);
        let amount = rng.uniform_range(0.0, 10_000.0);
        let dt = sched.time_to_accumulate(t0, amount);
        if !dt.is_finite() {
            continue;
        }
        let got = sched.integrate(t0, dt);
        assert!(
            (got - amount).abs() < 1e-6 * (1.0 + amount),
            "case {case}: {got} vs {amount}"
        );
    }
}

/// min_with is pointwise min at arbitrary times.
#[test]
fn min_with_pointwise() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(2100 + case);
        let a = schedule(&mut rng);
        let b = schedule(&mut rng);
        let m = a.min_with(&b);
        for _ in 0..20 {
            let t = rng.uniform_range(0.0, 600.0);
            assert_eq!(
                m.value_at(t),
                a.value_at(t).min(b.value_at(t)),
                "case {case} at t={t}"
            );
        }
    }
}

/// Transfers: arrival >= depart >= enqueue time; same-sender transfers
/// never overlap (FIFO NIC); more bytes never arrive earlier.
#[test]
fn transfer_ordering() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(3100 + case);
        let n_transfers = 1 + rng.index(19);
        let mbps = rng.uniform_range(1.0, 1000.0);
        let latency = rng.uniform_range(0.0, 0.2);
        let mut net = NetworkModel::uniform(3, mbps, latency);
        let mut now = 0.0;
        let mut last_send_done = 0.0;
        for i in 0..n_transfers {
            let b = rng.uniform_range(1.0, 5e6);
            let dst = 1 + (i % 2);
            let tr = net.transfer(0, dst, b, now);
            assert!(tr.depart >= now - 1e-9, "case {case}");
            assert!(
                tr.depart >= last_send_done - 1e-9,
                "case {case}: NIC FIFO violated"
            );
            assert!(tr.arrival >= tr.depart + latency - 1e-9, "case {case}");
            last_send_done = tr.arrival - latency;
            now += 0.01;
        }
    }
}

#[test]
fn bigger_transfers_take_longer() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(4100 + case);
        let b1 = rng.uniform_range(1.0, 1e7);
        let factor = rng.uniform_range(1.0, 10.0);
        let mbps = rng.uniform_range(1.0, 1000.0);
        let mut n1 = NetworkModel::uniform(2, mbps, 0.0);
        let mut n2 = NetworkModel::uniform(2, mbps, 0.0);
        let t1 = n1.transfer(0, 1, b1, 0.0);
        let t2 = n2.transfer(0, 1, b1 * factor, 0.0);
        assert!(t2.arrival >= t1.arrival - 1e-12, "case {case}");
    }
}

/// Iteration time is monotone in LBS and antitone in capacity, for any
/// batch exponent.
#[test]
fn iter_time_monotonicity() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(5100 + case);
        let cap = rng.uniform_range(1.0, 400.0);
        let beta = rng.uniform_range(0.2, 1.0);
        let lbs = 1 + rng.index(1999);
        let cm = ComputeModel::homogeneous(1, cap, 1.8, 0.1).with_batch_exponent(beta);
        let t = cm.iter_time(0, lbs, 0.0);
        let t_more = cm.iter_time(0, lbs + 1, 0.0);
        assert!(t_more >= t, "case {case}");
        let cm_fast = ComputeModel::homogeneous(1, cap * 2.0, 1.8, 0.1).with_batch_exponent(beta);
        assert!(cm_fast.iter_time(0, lbs, 0.0) <= t, "case {case}");
    }
}

/// The event queue is a stable priority queue: output times are sorted,
/// and equal times preserve insertion order.
#[test]
fn event_queue_stable_sort() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed_from_u64(6100 + case);
        let n_events = rng.index(200);
        let mut q = EventQueue::new();
        for i in 0..n_events {
            // Quantize times to force ties.
            q.schedule(rng.uniform_range(0.0, 100.0).round(), i);
        }
        let mut prev_time = f64::NEG_INFINITY;
        let mut prev_seq_at_time = None::<usize>;
        while let Some((t, seq)) = q.pop() {
            assert!(t >= prev_time, "case {case}");
            if t == prev_time {
                assert!(
                    seq > prev_seq_at_time.unwrap(),
                    "case {case}: tie order violated"
                );
            }
            prev_time = t;
            prev_seq_at_time = Some(seq);
        }
    }
}
