//! The discrete-event queue.
//!
//! A binary heap keyed on `(time, sequence)`: events at equal virtual times
//! pop in insertion order, which makes whole-cluster simulations fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap over (time, seq) via reversed comparison.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue over an arbitrary event payload type.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: f64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
            peak: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute virtual time `time`. Scheduling in the
    /// past (before the last popped event) is a logic error.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now - 1e-9,
            "scheduling into the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.peak = self.peak.max(self.heap.len());
    }

    /// Pop the earliest event, advancing `now`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of the queue length over its whole lifetime — the
    /// telemetry `queue_depth` peak without sampling on every pop.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(2.5, ());
        q.schedule(7.0, ());
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.pop();
        assert_eq!(q.now(), 7.0);
    }

    #[test]
    fn scheduling_at_now_is_ok() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.pop();
        q.schedule(1.0, 2); // same time as `now` — allowed
        assert_eq!(q.pop(), Some((1.0, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(10.0, 4);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule(2.0, 2);
        q.schedule(3.0, 3);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((10.0, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracking() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peak_len_is_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        q.schedule(3.0, ());
        q.pop();
        q.pop();
        q.schedule(4.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_len(), 3);
    }
}
