//! # dlion-simnet
//!
//! A deterministic discrete-event substrate for simulating micro-cloud
//! clusters: virtual time, an event queue with stable ordering, and models
//! of the two resources whose heterogeneity and dynamism the DLion paper is
//! about —
//!
//! * [`ComputeModel`] — per-worker compute capacity as a piecewise-constant
//!   schedule of "capacity units" (CPU cores in the CPU cluster, GPU-scaled
//!   units in the GPU cluster), the analogue of the paper's `stress`-based
//!   emulation, plus the iteration-time profiler the LBS controller uses,
//! * [`NetworkModel`] — per-link bandwidth schedules (the analogue of `tc`),
//!   per-message latency, and a per-worker egress NIC FIFO so that a worker
//!   sending to its n−1 peers serializes those transfers, which is what
//!   makes dense gradient exchange a bottleneck exactly as in the paper.
//!
//! All state advances only through explicit calls with a caller-supplied
//! `now`; there are no wall-clock reads, so simulations are reproducible.

pub mod compute;
pub mod event;
pub mod network;
pub mod schedule;

pub use compute::ComputeModel;
pub use event::EventQueue;
pub use network::{NetworkModel, Transfer};
pub use schedule::PiecewiseConst;

/// Convert megabits per second and bytes into seconds of transfer time.
pub fn transfer_seconds(bytes: f64, mbps: f64) -> f64 {
    assert!(mbps > 0.0, "bandwidth must be positive");
    bytes * 8.0 / (mbps * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_seconds_units() {
        // 1 MB over 8 Mbps = 1 second.
        assert!((transfer_seconds(1_000_000.0, 8.0) - 1.0).abs() < 1e-12);
        // 5 MB over 40 Mbps = 1 second.
        assert!((transfer_seconds(5_000_000.0, 40.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        transfer_seconds(1.0, 0.0);
    }
}
