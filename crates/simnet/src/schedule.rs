//! Piecewise-constant resource schedules.
//!
//! Both compute capacity ("how many cores does worker *i* have right now")
//! and link bandwidth ("how many Mbps does link *i→j* carry right now") are
//! modelled as right-continuous step functions of virtual time. Dynamism —
//! the paper's Dynamic SYS A/B environments and the fluctuating resources of
//! Figures 19/20 — is just a schedule with several steps.

/// A right-continuous step function of time: value is `points[k].1` for
/// `t ∈ [points[k].0, points[k+1].0)`. The first point must be at `t = 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct PiecewiseConst {
    points: Vec<(f64, f64)>,
}

impl PiecewiseConst {
    /// A constant schedule.
    pub fn constant(v: f64) -> Self {
        assert!(v.is_finite());
        PiecewiseConst {
            points: vec![(0.0, v)],
        }
    }

    /// Build from `(start_time, value)` steps; must start at 0 and be
    /// strictly increasing in time.
    pub fn steps(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "schedule needs at least one step");
        assert_eq!(points[0].0, 0.0, "schedule must start at t=0");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "step times must be strictly increasing");
        }
        assert!(points.iter().all(|p| p.1.is_finite()));
        PiecewiseConst { points }
    }

    /// Concatenate per-phase constant values, each lasting `phase_len`
    /// seconds (the Dynamic SYS A/B pattern: one environment per phase).
    pub fn phases(values: &[f64], phase_len: f64) -> Self {
        assert!(!values.is_empty() && phase_len > 0.0);
        let points = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * phase_len, v))
            .collect();
        PiecewiseConst::steps(points)
    }

    /// Value at time `t` (clamped to the first step for `t < 0`).
    pub fn value_at(&self, t: f64) -> f64 {
        // Index of the first step strictly after `t`; the step before it is
        // in effect. `t` before the first step clamps to the first value.
        let i = self.points.partition_point(|p| p.0 <= t);
        self.points[i.saturating_sub(1)].1
    }

    /// Time of the first step strictly after `t` (`INFINITY` past the last).
    fn next_step_after(&self, t: f64) -> f64 {
        match self.points.get(self.points.partition_point(|p| p.0 <= t)) {
            Some(&(s, _)) => s,
            None => f64::INFINITY,
        }
    }

    /// Integral of the schedule over `[t0, t0 + dt]`.
    pub fn integrate(&self, t0: f64, dt: f64) -> f64 {
        assert!(dt >= 0.0);
        if dt == 0.0 {
            return 0.0;
        }
        let t1 = t0 + dt;
        let mut acc = 0.0;
        let mut cur = t0;
        while cur < t1 {
            let v = self.value_at(cur);
            let next_step = self.next_step_after(cur).min(t1);
            acc += v * (next_step - cur);
            cur = next_step;
        }
        acc
    }

    /// Starting at `t0`, how long until the integral of the schedule reaches
    /// `amount`? Returns `f64::INFINITY` if the schedule's tail is zero and
    /// the amount is never reached. Used to compute the duration of a byte
    /// transfer under time-varying bandwidth.
    pub fn time_to_accumulate(&self, t0: f64, amount: f64) -> f64 {
        assert!(amount >= 0.0);
        if amount == 0.0 {
            return 0.0;
        }
        let mut remaining = amount;
        let mut cur = t0;
        loop {
            let v = self.value_at(cur);
            let next_step = self.next_step_after(cur);
            if v > 0.0 {
                let seg = next_step - cur;
                let needed = remaining / v;
                if needed <= seg {
                    return cur + needed - t0;
                }
                remaining -= v * seg;
            } else if next_step.is_infinite() {
                return f64::INFINITY;
            }
            if next_step.is_infinite() && v > 0.0 {
                // Handled above by needed <= seg (seg = inf).
                unreachable!();
            }
            cur = next_step;
        }
    }

    /// The underlying steps.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Pointwise minimum of two schedules (merging their step points).
    ///
    /// Used to derive a directed link's bandwidth from two per-worker
    /// bandwidth figures: the link `i→j` carries `min(bw_i, bw_j)`.
    pub fn min_with(&self, other: &PiecewiseConst) -> PiecewiseConst {
        let mut times: Vec<f64> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|p| p.0)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup();
        let points = times
            .into_iter()
            .map(|t| (t, self.value_at(t).min(other.value_at(t))))
            .collect();
        PiecewiseConst { points }
    }

    /// Pointwise product of two schedules (merging their step points).
    ///
    /// Used to apply a scenario's dimensionless factor schedule (diurnal
    /// wave, outage window) to a base capacity or bandwidth schedule.
    pub fn product_with(&self, other: &PiecewiseConst) -> PiecewiseConst {
        let mut times: Vec<f64> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|p| p.0)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup();
        let points = times
            .into_iter()
            .map(|t| (t, self.value_at(t) * other.value_at(t)))
            .collect();
        PiecewiseConst { points }
    }

    /// Scale all values by a factor (e.g. a `stress`-style capacity cut).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0);
        PiecewiseConst {
            points: self.points.iter().map(|&(t, v)| (t, v * factor)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_value_everywhere() {
        let s = PiecewiseConst::constant(24.0);
        assert_eq!(s.value_at(0.0), 24.0);
        assert_eq!(s.value_at(1e9), 24.0);
        assert_eq!(s.value_at(-5.0), 24.0);
    }

    #[test]
    fn steps_lookup() {
        let s = PiecewiseConst::steps(vec![(0.0, 10.0), (100.0, 5.0), (200.0, 20.0)]);
        assert_eq!(s.value_at(0.0), 10.0);
        assert_eq!(s.value_at(99.999), 10.0);
        assert_eq!(s.value_at(100.0), 5.0);
        assert_eq!(s.value_at(150.0), 5.0);
        assert_eq!(s.value_at(200.0), 20.0);
        assert_eq!(s.value_at(1e6), 20.0);
    }

    #[test]
    fn phases_builder() {
        let s = PiecewiseConst::phases(&[50.0, 35.0, 20.0], 500.0);
        assert_eq!(s.value_at(0.0), 50.0);
        assert_eq!(s.value_at(600.0), 35.0);
        assert_eq!(s.value_at(1400.0), 20.0);
    }

    #[test]
    fn integrate_across_steps() {
        let s = PiecewiseConst::steps(vec![(0.0, 10.0), (100.0, 5.0)]);
        assert_eq!(s.integrate(0.0, 50.0), 500.0);
        assert_eq!(s.integrate(50.0, 100.0), 10.0 * 50.0 + 5.0 * 50.0);
        assert_eq!(s.integrate(150.0, 10.0), 50.0);
        assert_eq!(s.integrate(0.0, 0.0), 0.0);
    }

    #[test]
    fn time_to_accumulate_constant() {
        let s = PiecewiseConst::constant(4.0);
        assert_eq!(s.time_to_accumulate(0.0, 8.0), 2.0);
        assert_eq!(s.time_to_accumulate(123.0, 8.0), 2.0);
        assert_eq!(s.time_to_accumulate(0.0, 0.0), 0.0);
    }

    #[test]
    fn time_to_accumulate_across_steps() {
        // 10 units/s for 100 s, then 5 units/s.
        let s = PiecewiseConst::steps(vec![(0.0, 10.0), (100.0, 5.0)]);
        // 1050 units starting at t=0: 1000 in first 100 s, 50 more at 5/s = 10 s.
        assert_eq!(s.time_to_accumulate(0.0, 1050.0), 110.0);
        // Starting mid-segment.
        assert_eq!(s.time_to_accumulate(95.0, 100.0), 5.0 + 10.0);
    }

    #[test]
    fn time_to_accumulate_through_zero_segment() {
        let s = PiecewiseConst::steps(vec![(0.0, 10.0), (10.0, 0.0), (20.0, 10.0)]);
        // 150 units: 100 in [0,10), stall in [10,20), 50 more by t=25.
        assert_eq!(s.time_to_accumulate(0.0, 150.0), 25.0);
    }

    #[test]
    fn time_to_accumulate_never() {
        let s = PiecewiseConst::steps(vec![(0.0, 10.0), (10.0, 0.0)]);
        assert!(s.time_to_accumulate(0.0, 101.0).is_infinite());
        assert_eq!(s.time_to_accumulate(0.0, 100.0), 10.0);
    }

    #[test]
    fn integral_consistency_with_time_to_accumulate() {
        let s = PiecewiseConst::steps(vec![(0.0, 3.0), (7.0, 9.0), (30.0, 1.0)]);
        for &(t0, amount) in &[(0.0, 10.0), (5.0, 100.0), (29.0, 17.0), (100.0, 3.0)] {
            let dt = s.time_to_accumulate(t0, amount);
            let got = s.integrate(t0, dt);
            assert!(
                (got - amount).abs() < 1e-9,
                "t0={t0} amount={amount}: {got}"
            );
        }
    }

    #[test]
    fn scaled_schedule() {
        let s = PiecewiseConst::steps(vec![(0.0, 10.0), (50.0, 20.0)]).scaled(0.5);
        assert_eq!(s.value_at(0.0), 5.0);
        assert_eq!(s.value_at(60.0), 10.0);
    }

    #[test]
    fn min_with_merges_steps() {
        let a = PiecewiseConst::steps(vec![(0.0, 50.0), (100.0, 20.0)]);
        let b = PiecewiseConst::steps(vec![(0.0, 35.0), (150.0, 60.0)]);
        let m = a.min_with(&b);
        assert_eq!(m.value_at(0.0), 35.0);
        assert_eq!(m.value_at(120.0), 20.0);
        assert_eq!(m.value_at(200.0), 20.0);
        let m2 = b.min_with(&a);
        for t in [0.0, 50.0, 100.0, 149.0, 151.0, 400.0] {
            assert_eq!(
                m.value_at(t),
                m2.value_at(t),
                "min must be symmetric at t={t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_steps_panic() {
        PiecewiseConst::steps(vec![(0.0, 1.0), (5.0, 2.0), (5.0, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "start at t=0")]
    fn steps_not_from_zero_panic() {
        PiecewiseConst::steps(vec![(1.0, 1.0)]);
    }
}
