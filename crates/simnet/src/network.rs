//! The micro-cloud network model.
//!
//! Workers are connected pairwise; each directed link `i→j` has its own
//! bandwidth schedule (the `tc` analogue; LAN links are fast and flat, WAN
//! links follow the Amazon inter-region matrix of Table 2). Two effects the
//! paper's evaluation depends on are modelled explicitly:
//!
//! * **Egress serialization** — a worker has one NIC, so its outgoing
//!   transfers queue FIFO. Sending a dense 5 MB gradient to all 5 peers
//!   costs 5 back-to-back transfers, which is precisely why dense exchange
//!   (Baseline/Hop) collapses in WAN environments.
//! * **Time-varying bandwidth** — transfer duration integrates the link's
//!   bandwidth schedule, so a transfer spanning a bandwidth step slows down
//!   or speeds up mid-flight.
//!
//! The model also exposes [`NetworkModel::bandwidth_mbps`], the paper's
//! *network resource monitor* (Fig. 10): strategies query it to size their
//! partial gradients.

use crate::schedule::PiecewiseConst;
use dlion_tensor::DetRng;

/// Result of enqueueing a transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transfer {
    /// When the NIC started serving this transfer (>= enqueue time).
    pub depart: f64,
    /// When the last byte arrives at the destination.
    pub arrival: f64,
}

impl Transfer {
    /// Total time from NIC service start to delivery.
    pub fn duration(&self) -> f64 {
        self.arrival - self.depart
    }
}

/// Directed-link network with per-worker egress FIFOs.
pub struct NetworkModel {
    n: usize,
    /// Row-major `n×n` bandwidth schedules in Mbps; diagonal unused.
    links: Vec<PiecewiseConst>,
    /// One-way propagation latency per link (seconds), row-major.
    latency: Vec<f64>,
    /// Next time each worker's NIC is free.
    egress_free: Vec<f64>,
    /// Optional multiplicative bandwidth jitter: relative std + RNG.
    jitter: Option<(f64, DetRng)>,
}

impl NetworkModel {
    /// Build from explicit per-link schedules and latencies.
    pub fn new(n: usize, links: Vec<PiecewiseConst>, latency: Vec<f64>) -> Self {
        assert!(n >= 2, "need at least two workers");
        assert_eq!(links.len(), n * n, "links must be n*n");
        assert_eq!(latency.len(), n * n, "latency must be n*n");
        NetworkModel {
            n,
            links,
            latency,
            egress_free: vec![0.0; n],
            jitter: None,
        }
    }

    /// Enable per-transfer multiplicative bandwidth jitter (relative std
    /// `rel_std`, clamped so effective bandwidth never drops below 10 % of
    /// the scheduled value) — the paper's "bandwidths in WANs are much more
    /// scarce and fluctuating". Deterministic given the seed.
    pub fn with_jitter(mut self, rel_std: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rel_std),
            "relative std must be in [0,1)"
        );
        if rel_std > 0.0 {
            self.jitter = Some((rel_std, DetRng::seed_from_u64(seed)));
        }
        self
    }

    /// Fully symmetric network: every link has the same constant bandwidth
    /// and latency.
    pub fn uniform(n: usize, mbps: f64, latency: f64) -> Self {
        let links = vec![PiecewiseConst::constant(mbps); n * n];
        NetworkModel::new(n, links, vec![latency; n * n])
    }

    /// Build from a per-link constant bandwidth matrix (row-major, Mbps).
    pub fn from_matrix(n: usize, mbps: &[f64], latency: f64) -> Self {
        assert_eq!(mbps.len(), n * n);
        let links = mbps.iter().map(|&b| PiecewiseConst::constant(b)).collect();
        NetworkModel::new(n, links, vec![latency; n * n])
    }

    pub fn n(&self) -> usize {
        self.n
    }

    fn link_idx(&self, src: usize, dst: usize) -> usize {
        assert!(
            src < self.n && dst < self.n && src != dst,
            "bad link {src}->{dst}"
        );
        src * self.n + dst
    }

    /// Replace the schedule of one directed link.
    pub fn set_link(&mut self, src: usize, dst: usize, schedule: PiecewiseConst) {
        let i = self.link_idx(src, dst);
        self.links[i] = schedule;
    }

    /// Replace the latency of one directed link.
    pub fn set_latency(&mut self, src: usize, dst: usize, latency: f64) {
        let i = self.link_idx(src, dst);
        self.latency[i] = latency;
    }

    /// The *network resource monitor*: currently available bandwidth of the
    /// link `src→dst`, in Mbps.
    pub fn bandwidth_mbps(&self, src: usize, dst: usize, now: f64) -> f64 {
        self.links[self.link_idx(src, dst)].value_at(now)
    }

    /// When will `src`'s NIC next be free?
    pub fn egress_free_at(&self, src: usize) -> f64 {
        self.egress_free[src]
    }

    /// Egress backlog of `src` relative to `now` (seconds of queued work).
    pub fn egress_backlog(&self, src: usize, now: f64) -> f64 {
        (self.egress_free[src] - now).max(0.0)
    }

    /// Enqueue a transfer of `bytes` on link `src→dst` at time `now`.
    ///
    /// The transfer starts when the NIC frees up, proceeds at the link's
    /// (time-varying) bandwidth, and arrives one propagation latency after
    /// the last byte leaves. The NIC is then busy until the last byte has
    /// left.
    pub fn transfer(&mut self, src: usize, dst: usize, bytes: f64, now: f64) -> Transfer {
        assert!(bytes >= 0.0);
        let li = self.link_idx(src, dst);
        let depart = self.egress_free[src].max(now);
        let mut megabits = bytes * 8.0 / 1e6;
        if let Some((std, rng)) = self.jitter.as_mut() {
            // Jittering the *amount* by 1/factor is equivalent to jittering
            // the bandwidth by the factor for this transfer.
            let factor = (1.0 + rng.normal_ms(0.0, *std)).max(0.1);
            megabits /= factor;
        }
        let tx = self.links[li].time_to_accumulate(depart, megabits);
        assert!(
            tx.is_finite(),
            "link {src}->{dst} has zero tail bandwidth; transfer never completes"
        );
        let done_sending = depart + tx;
        self.egress_free[src] = done_sending;
        let arrival = done_sending + self.latency[li];
        dlion_telemetry::event!(now, w: src, "link_transfer";
            "dst" => dst,
            "bytes" => bytes,
            "queued" => depart - now,
            "tx_secs" => tx);
        dlion_telemetry::trace!(target: "simnet.net",
            "t={now:.3}: {src}->{dst} {bytes:.0} B queued {:.3}s tx {tx:.3}s",
            depart - now);
        Transfer { depart, arrival }
    }

    /// Reset all NIC queues (e.g. between simulation runs).
    pub fn reset(&mut self) {
        self.egress_free.iter_mut().for_each(|t| *t = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_timing() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.05);
        // 1 MB at 8 Mbps = 1 s + 0.05 s latency.
        let t = net.transfer(0, 1, 1_000_000.0, 0.0);
        assert_eq!(t.depart, 0.0);
        assert!((t.arrival - 1.05).abs() < 1e-9);
        assert!((t.duration() - 1.05).abs() < 1e-9);
    }

    #[test]
    fn egress_fifo_serializes_sender() {
        let mut net = NetworkModel::uniform(3, 8.0, 0.0);
        let t1 = net.transfer(0, 1, 1_000_000.0, 0.0);
        let t2 = net.transfer(0, 2, 1_000_000.0, 0.0);
        assert!((t1.arrival - 1.0).abs() < 1e-9);
        assert_eq!(t2.depart, 1.0, "second transfer must wait for the NIC");
        assert!((t2.arrival - 2.0).abs() < 1e-9);
        // A different sender is unaffected.
        let t3 = net.transfer(1, 2, 1_000_000.0, 0.0);
        assert_eq!(t3.depart, 0.0);
    }

    #[test]
    fn transfer_spanning_bandwidth_step() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        // 8 Mbps for 1 s, then 16 Mbps.
        net.set_link(0, 1, PiecewiseConst::steps(vec![(0.0, 8.0), (1.0, 16.0)]));
        // 2 MB = 16 Mb: 8 Mb in the first second, 8 Mb at 16 Mbps = 0.5 s.
        let t = net.transfer(0, 1, 2_000_000.0, 0.0);
        assert!((t.arrival - 1.5).abs() < 1e-9);
    }

    #[test]
    fn monitor_reads_schedule() {
        let mut net = NetworkModel::uniform(2, 50.0, 0.0);
        net.set_link(
            0,
            1,
            PiecewiseConst::steps(vec![(0.0, 30.0), (100.0, 100.0)]),
        );
        assert_eq!(net.bandwidth_mbps(0, 1, 0.0), 30.0);
        assert_eq!(net.bandwidth_mbps(0, 1, 150.0), 100.0);
        assert_eq!(net.bandwidth_mbps(1, 0, 0.0), 50.0);
    }

    #[test]
    fn from_matrix_asymmetric() {
        // 2 workers: 0->1 at 10, 1->0 at 40.
        let net = NetworkModel::from_matrix(2, &[0.0, 10.0, 40.0, 0.0], 0.0);
        assert_eq!(net.bandwidth_mbps(0, 1, 0.0), 10.0);
        assert_eq!(net.bandwidth_mbps(1, 0, 0.0), 40.0);
    }

    #[test]
    fn later_enqueue_after_idle_nic() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        net.transfer(0, 1, 1_000_000.0, 0.0); // busy until 1.0
        let t = net.transfer(0, 1, 1_000_000.0, 5.0); // NIC idle again
        assert_eq!(t.depart, 5.0);
        assert_eq!(net.egress_backlog(0, 5.5), 0.5);
    }

    #[test]
    fn zero_byte_transfer_is_latency_only() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.07);
        let t = net.transfer(0, 1, 0.0, 3.0);
        assert_eq!(t.depart, 3.0);
        assert!((t.arrival - 3.07).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_queues() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        net.transfer(0, 1, 10_000_000.0, 0.0);
        assert!(net.egress_free_at(0) > 0.0);
        net.reset();
        assert_eq!(net.egress_free_at(0), 0.0);
    }

    #[test]
    fn jitter_perturbs_but_preserves_mean() {
        let base = {
            let mut net = NetworkModel::uniform(2, 8.0, 0.0);
            net.transfer(0, 1, 1_000_000.0, 0.0).arrival
        };
        let mut net = NetworkModel::uniform(2, 8.0, 0.0).with_jitter(0.2, 7);
        let mut durations = Vec::new();
        let mut t = 0.0;
        for _ in 0..500 {
            let tr = net.transfer(0, 1, 1_000_000.0, t);
            durations.push(tr.arrival - tr.depart);
            t = tr.arrival;
        }
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        assert!(
            (mean - base).abs() < 0.15 * base,
            "mean {mean} vs base {base}"
        );
        let distinct = durations
            .iter()
            .filter(|&&d| (d - base).abs() > 1e-9)
            .count();
        assert!(distinct > 400, "jitter must actually perturb transfers");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = || {
            let mut net = NetworkModel::uniform(2, 8.0, 0.0).with_jitter(0.3, 42);
            let mut t = 0.0;
            let mut out = Vec::new();
            for _ in 0..20 {
                let tr = net.transfer(0, 1, 500_000.0, t);
                t = tr.arrival;
                out.push(tr.arrival.to_bits());
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_jitter_disabled() {
        let mut a = NetworkModel::uniform(2, 8.0, 0.0).with_jitter(0.0, 1);
        let mut b = NetworkModel::uniform(2, 8.0, 0.0);
        assert_eq!(a.transfer(0, 1, 1e6, 0.0), b.transfer(0, 1, 1e6, 0.0));
    }

    #[test]
    #[should_panic(expected = "bad link")]
    fn self_link_panics() {
        let net = NetworkModel::uniform(2, 8.0, 0.0);
        net.bandwidth_mbps(1, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "never completes")]
    fn dead_link_transfer_panics() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        net.set_link(0, 1, PiecewiseConst::constant(0.0));
        net.transfer(0, 1, 1.0, 0.0);
    }
}
