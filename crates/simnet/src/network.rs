//! The micro-cloud network model.
//!
//! Workers are connected pairwise; each directed link `i→j` has its own
//! bandwidth schedule (the `tc` analogue; LAN links are fast and flat, WAN
//! links follow the Amazon inter-region matrix of Table 2). Two effects the
//! paper's evaluation depends on are modelled explicitly:
//!
//! * **Egress serialization** — a worker has one NIC, so its outgoing
//!   transfers queue FIFO. Sending a dense 5 MB gradient to all 5 peers
//!   costs 5 back-to-back transfers, which is precisely why dense exchange
//!   (Baseline/Hop) collapses in WAN environments.
//! * **Time-varying bandwidth** — transfer duration integrates the link's
//!   bandwidth schedule, so a transfer spanning a bandwidth step slows down
//!   or speeds up mid-flight.
//!
//! The model also exposes [`NetworkModel::bandwidth_mbps`], the paper's
//! *network resource monitor* (Fig. 10): strategies query it to size their
//! partial gradients.

use crate::schedule::PiecewiseConst;
use dlion_tensor::DetRng;
use std::collections::HashMap;

/// Result of enqueueing a transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transfer {
    /// When the NIC started serving this transfer (>= enqueue time).
    pub depart: f64,
    /// When the last byte arrives at the destination.
    pub arrival: f64,
}

impl Transfer {
    /// Total time from NIC service start to delivery.
    pub fn duration(&self) -> f64 {
        self.arrival - self.depart
    }
}

/// Directed-link network with per-worker egress FIFOs.
///
/// Per-link state is flat arrays indexed by link id (`src * n + dst`).
/// Bandwidth schedules are *interned*: real clusters have a handful of
/// distinct link classes (LAN, a few WAN pairs), so an `n×n` cluster stores
/// one `u32` class id per link plus one [`PiecewiseConst`] per class — at
/// n=1024 that is 4 MB of ids instead of ~1M heap-allocated schedules.
pub struct NetworkModel {
    n: usize,
    /// Distinct bandwidth schedules (Mbps), shared across links.
    classes: Vec<PiecewiseConst>,
    /// Row-major `n×n` index into `classes`; diagonal unused.
    link_class: Vec<u32>,
    /// One-way propagation latency per link (seconds), row-major.
    latency: Vec<f64>,
    /// Next time each worker's NIC is free.
    egress_free: Vec<f64>,
    /// Optional multiplicative bandwidth jitter: relative std + RNG.
    jitter: Option<(f64, DetRng)>,
}

/// Hashable identity of a schedule: the bit patterns of its steps.
fn sched_key(s: &PiecewiseConst) -> Vec<(u64, u64)> {
    s.points()
        .iter()
        .map(|&(t, v)| (t.to_bits(), v.to_bits()))
        .collect()
}

/// Intern `sched` into `classes`, returning its class id.
fn intern(
    classes: &mut Vec<PiecewiseConst>,
    by_key: &mut HashMap<Vec<(u64, u64)>, u32>,
    sched: PiecewiseConst,
) -> u32 {
    *by_key.entry(sched_key(&sched)).or_insert_with(|| {
        classes.push(sched);
        (classes.len() - 1) as u32
    })
}

impl NetworkModel {
    /// Build from explicit per-link schedules and latencies.
    pub fn new(n: usize, links: Vec<PiecewiseConst>, latency: Vec<f64>) -> Self {
        assert!(n >= 2, "need at least two workers");
        assert_eq!(links.len(), n * n, "links must be n*n");
        assert_eq!(latency.len(), n * n, "latency must be n*n");
        let mut classes = Vec::new();
        let mut by_key = HashMap::new();
        let link_class = links
            .into_iter()
            .map(|sched| intern(&mut classes, &mut by_key, sched))
            .collect();
        NetworkModel {
            n,
            classes,
            link_class,
            latency,
            egress_free: vec![0.0; n],
            jitter: None,
        }
    }

    /// Enable per-transfer multiplicative bandwidth jitter (relative std
    /// `rel_std`, clamped so effective bandwidth never drops below 10 % of
    /// the scheduled value) — the paper's "bandwidths in WANs are much more
    /// scarce and fluctuating". Deterministic given the seed.
    pub fn with_jitter(mut self, rel_std: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rel_std),
            "relative std must be in [0,1)"
        );
        if rel_std > 0.0 {
            self.jitter = Some((rel_std, DetRng::seed_from_u64(seed)));
        }
        self
    }

    /// Fully symmetric network: every link has the same constant bandwidth
    /// and latency.
    pub fn uniform(n: usize, mbps: f64, latency: f64) -> Self {
        let links = vec![PiecewiseConst::constant(mbps); n * n];
        NetworkModel::new(n, links, vec![latency; n * n])
    }

    /// Build from a per-link constant bandwidth matrix (row-major, Mbps).
    pub fn from_matrix(n: usize, mbps: &[f64], latency: f64) -> Self {
        assert_eq!(mbps.len(), n * n);
        let links = mbps.iter().map(|&b| PiecewiseConst::constant(b)).collect();
        NetworkModel::new(n, links, vec![latency; n * n])
    }

    pub fn n(&self) -> usize {
        self.n
    }

    fn link_idx(&self, src: usize, dst: usize) -> usize {
        assert!(
            src < self.n && dst < self.n && src != dst,
            "bad link {src}->{dst}"
        );
        src * self.n + dst
    }

    /// Replace the schedule of one directed link.
    pub fn set_link(&mut self, src: usize, dst: usize, schedule: PiecewiseConst) {
        let i = self.link_idx(src, dst);
        // Re-intern rather than building the class map from scratch: a
        // dangling class (no links left pointing at it) is a few stale
        // bytes, not a correctness issue.
        let mut by_key: HashMap<Vec<(u64, u64)>, u32> = self
            .classes
            .iter()
            .enumerate()
            .map(|(c, s)| (sched_key(s), c as u32))
            .collect();
        self.link_class[i] = intern(&mut self.classes, &mut by_key, schedule);
    }

    fn link_sched(&self, li: usize) -> &PiecewiseConst {
        &self.classes[self.link_class[li] as usize]
    }

    /// Multiply every link's bandwidth by the sending worker's factor
    /// schedule (egress shaping: one NIC, one uplink). Interning is
    /// preserved — scaled classes are shared by `(class, factor)`
    /// identity, so an n×n cluster with a handful of link classes and a
    /// handful of distinct factors stays a handful of classes.
    pub fn scale_egress(&mut self, factors: &[PiecewiseConst]) {
        assert_eq!(factors.len(), self.n, "need one factor per worker");
        // Distinct factor identities (most scenarios phase-shift a few
        // region waves across many workers).
        let mut by_fkey: HashMap<Vec<(u64, u64)>, u32> = HashMap::new();
        let fid: Vec<u32> = factors
            .iter()
            .map(|f| {
                let next = by_fkey.len() as u32;
                *by_fkey.entry(sched_key(f)).or_insert(next)
            })
            .collect();
        let old_classes = std::mem::take(&mut self.classes);
        let mut scaled: HashMap<(u32, u32), u32> = HashMap::new();
        let mut classes: Vec<PiecewiseConst> = Vec::new();
        for src in 0..self.n {
            for dst in 0..self.n {
                let li = src * self.n + dst;
                if src == dst {
                    // Diagonal is never read; keep its class id valid.
                    self.link_class[li] = 0;
                    continue;
                }
                let oc = self.link_class[li];
                self.link_class[li] = *scaled.entry((oc, fid[src])).or_insert_with(|| {
                    classes.push(old_classes[oc as usize].product_with(&factors[src]));
                    (classes.len() - 1) as u32
                });
            }
        }
        self.classes = classes;
    }

    /// Replace the latency of one directed link.
    pub fn set_latency(&mut self, src: usize, dst: usize, latency: f64) {
        let i = self.link_idx(src, dst);
        self.latency[i] = latency;
    }

    /// The *network resource monitor*: currently available bandwidth of the
    /// link `src→dst`, in Mbps.
    pub fn bandwidth_mbps(&self, src: usize, dst: usize, now: f64) -> f64 {
        self.link_sched(self.link_idx(src, dst)).value_at(now)
    }

    /// When will `src`'s NIC next be free?
    pub fn egress_free_at(&self, src: usize) -> f64 {
        self.egress_free[src]
    }

    /// Egress backlog of `src` relative to `now` (seconds of queued work).
    pub fn egress_backlog(&self, src: usize, now: f64) -> f64 {
        (self.egress_free[src] - now).max(0.0)
    }

    /// Enqueue a transfer of `bytes` on link `src→dst` at time `now`.
    ///
    /// The transfer starts when the NIC frees up, proceeds at the link's
    /// (time-varying) bandwidth, and arrives one propagation latency after
    /// the last byte leaves. The NIC is then busy until the last byte has
    /// left.
    pub fn transfer(&mut self, src: usize, dst: usize, bytes: f64, now: f64) -> Transfer {
        assert!(bytes >= 0.0);
        let li = self.link_idx(src, dst);
        let depart = self.egress_free[src].max(now);
        let mut megabits = bytes * 8.0 / 1e6;
        if let Some((std, rng)) = self.jitter.as_mut() {
            // Jittering the *amount* by 1/factor is equivalent to jittering
            // the bandwidth by the factor for this transfer.
            let factor = (1.0 + rng.normal_ms(0.0, *std)).max(0.1);
            megabits /= factor;
        }
        let tx = self.link_sched(li).time_to_accumulate(depart, megabits);
        assert!(
            tx.is_finite(),
            "link {src}->{dst} has zero tail bandwidth; transfer never completes"
        );
        let done_sending = depart + tx;
        self.egress_free[src] = done_sending;
        let arrival = done_sending + self.latency[li];
        dlion_telemetry::event!(now, w: src, "link_transfer";
            "dst" => dst,
            "bytes" => bytes,
            "queued" => depart - now,
            "tx_secs" => tx);
        dlion_telemetry::trace!(target: "simnet.net",
            "t={now:.3}: {src}->{dst} {bytes:.0} B queued {:.3}s tx {tx:.3}s",
            depart - now);
        Transfer { depart, arrival }
    }

    /// Reset all NIC queues (e.g. between simulation runs).
    pub fn reset(&mut self) {
        self.egress_free.iter_mut().for_each(|t| *t = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_timing() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.05);
        // 1 MB at 8 Mbps = 1 s + 0.05 s latency.
        let t = net.transfer(0, 1, 1_000_000.0, 0.0);
        assert_eq!(t.depart, 0.0);
        assert!((t.arrival - 1.05).abs() < 1e-9);
        assert!((t.duration() - 1.05).abs() < 1e-9);
    }

    #[test]
    fn egress_fifo_serializes_sender() {
        let mut net = NetworkModel::uniform(3, 8.0, 0.0);
        let t1 = net.transfer(0, 1, 1_000_000.0, 0.0);
        let t2 = net.transfer(0, 2, 1_000_000.0, 0.0);
        assert!((t1.arrival - 1.0).abs() < 1e-9);
        assert_eq!(t2.depart, 1.0, "second transfer must wait for the NIC");
        assert!((t2.arrival - 2.0).abs() < 1e-9);
        // A different sender is unaffected.
        let t3 = net.transfer(1, 2, 1_000_000.0, 0.0);
        assert_eq!(t3.depart, 0.0);
    }

    #[test]
    fn transfer_spanning_bandwidth_step() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        // 8 Mbps for 1 s, then 16 Mbps.
        net.set_link(0, 1, PiecewiseConst::steps(vec![(0.0, 8.0), (1.0, 16.0)]));
        // 2 MB = 16 Mb: 8 Mb in the first second, 8 Mb at 16 Mbps = 0.5 s.
        let t = net.transfer(0, 1, 2_000_000.0, 0.0);
        assert!((t.arrival - 1.5).abs() < 1e-9);
    }

    #[test]
    fn monitor_reads_schedule() {
        let mut net = NetworkModel::uniform(2, 50.0, 0.0);
        net.set_link(
            0,
            1,
            PiecewiseConst::steps(vec![(0.0, 30.0), (100.0, 100.0)]),
        );
        assert_eq!(net.bandwidth_mbps(0, 1, 0.0), 30.0);
        assert_eq!(net.bandwidth_mbps(0, 1, 150.0), 100.0);
        assert_eq!(net.bandwidth_mbps(1, 0, 0.0), 50.0);
    }

    #[test]
    fn from_matrix_asymmetric() {
        // 2 workers: 0->1 at 10, 1->0 at 40.
        let net = NetworkModel::from_matrix(2, &[0.0, 10.0, 40.0, 0.0], 0.0);
        assert_eq!(net.bandwidth_mbps(0, 1, 0.0), 10.0);
        assert_eq!(net.bandwidth_mbps(1, 0, 0.0), 40.0);
    }

    #[test]
    fn later_enqueue_after_idle_nic() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        net.transfer(0, 1, 1_000_000.0, 0.0); // busy until 1.0
        let t = net.transfer(0, 1, 1_000_000.0, 5.0); // NIC idle again
        assert_eq!(t.depart, 5.0);
        assert_eq!(net.egress_backlog(0, 5.5), 0.5);
    }

    #[test]
    fn zero_byte_transfer_is_latency_only() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.07);
        let t = net.transfer(0, 1, 0.0, 3.0);
        assert_eq!(t.depart, 3.0);
        assert!((t.arrival - 3.07).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_queues() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        net.transfer(0, 1, 10_000_000.0, 0.0);
        assert!(net.egress_free_at(0) > 0.0);
        net.reset();
        assert_eq!(net.egress_free_at(0), 0.0);
    }

    #[test]
    fn jitter_perturbs_but_preserves_mean() {
        let base = {
            let mut net = NetworkModel::uniform(2, 8.0, 0.0);
            net.transfer(0, 1, 1_000_000.0, 0.0).arrival
        };
        let mut net = NetworkModel::uniform(2, 8.0, 0.0).with_jitter(0.2, 7);
        let mut durations = Vec::new();
        let mut t = 0.0;
        for _ in 0..500 {
            let tr = net.transfer(0, 1, 1_000_000.0, t);
            durations.push(tr.arrival - tr.depart);
            t = tr.arrival;
        }
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        assert!(
            (mean - base).abs() < 0.15 * base,
            "mean {mean} vs base {base}"
        );
        let distinct = durations
            .iter()
            .filter(|&&d| (d - base).abs() > 1e-9)
            .count();
        assert!(distinct > 400, "jitter must actually perturb transfers");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = || {
            let mut net = NetworkModel::uniform(2, 8.0, 0.0).with_jitter(0.3, 42);
            let mut t = 0.0;
            let mut out = Vec::new();
            for _ in 0..20 {
                let tr = net.transfer(0, 1, 500_000.0, t);
                t = tr.arrival;
                out.push(tr.arrival.to_bits());
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_jitter_disabled() {
        let mut a = NetworkModel::uniform(2, 8.0, 0.0).with_jitter(0.0, 1);
        let mut b = NetworkModel::uniform(2, 8.0, 0.0);
        assert_eq!(a.transfer(0, 1, 1e6, 0.0), b.transfer(0, 1, 1e6, 0.0));
    }

    #[test]
    fn scale_egress_applies_sender_factor_and_shares_classes() {
        let mut net = NetworkModel::uniform(4, 100.0, 0.0);
        let half = PiecewiseConst::steps(vec![(0.0, 1.0), (10.0, 0.5)]);
        let factors = vec![
            PiecewiseConst::constant(1.0),
            half.clone(),
            half.clone(),
            PiecewiseConst::constant(1.0),
        ];
        net.scale_egress(&factors);
        // Sender 1's links halve after t=10; sender 0's never do.
        assert_eq!(net.bandwidth_mbps(1, 0, 5.0), 100.0);
        assert_eq!(net.bandwidth_mbps(1, 0, 15.0), 50.0);
        assert_eq!(net.bandwidth_mbps(0, 1, 15.0), 100.0);
        // One base class x two factor identities = two scaled classes.
        assert_eq!(net.classes.len(), 2);
        // Transfers still integrate the scaled schedule.
        let t = net.transfer(2, 3, 1_250_000.0, 10.0); // 10 Mb at 50 Mbps
        assert!((t.arrival - 10.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad link")]
    fn self_link_panics() {
        let net = NetworkModel::uniform(2, 8.0, 0.0);
        net.bandwidth_mbps(1, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "never completes")]
    fn dead_link_transfer_panics() {
        let mut net = NetworkModel::uniform(2, 8.0, 0.0);
        net.set_link(0, 1, PiecewiseConst::constant(0.0));
        net.transfer(0, 1, 1.0, 0.0);
    }
}
