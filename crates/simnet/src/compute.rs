//! The micro-cloud compute model.
//!
//! Each worker has a capacity schedule in "capacity units" — CPU cores for
//! the local cluster (Table 3's 24/24/12/12/6/6 patterns), or GPU-scaled
//! units for the Amazon cluster — the analogue of the paper's `stress`-based
//! emulation. Iteration time follows
//!
//! ```text
//! iter_time(w, lbs, t) = overhead
//!     + cost_per_sample * REF_LBS * (lbs / REF_LBS)^batch_exponent / capacity(w, t)
//! ```
//!
//! `cost_per_sample` is the per-sample cost at the reference batch size
//! [`REF_LBS`]; `batch_exponent <= 1` captures batching efficiency — real
//! training hardware processes large batches at better per-sample
//! throughput (vectorization, cache reuse, GPU occupancy), which is exactly
//! the data-parallelism headroom DLion's dynamic batching exploits (§3.2).
//! An exponent of 1 gives the plain linear law.
//!
//! [`ComputeModel::profile`] produces the noisy `(lbs, time)` samples that
//! the LBS controller regresses to estimate each worker's relative compute
//! power (§3.2), mirroring how the real system measures rather than reads
//! hardware specs.

use crate::schedule::PiecewiseConst;
use dlion_tensor::DetRng;

/// Reference batch size at which `cost_per_sample` is calibrated.
pub const REF_LBS: f64 = 32.0;

/// Per-worker compute capacity schedules plus the workload's cost law.
pub struct ComputeModel {
    capacity: Vec<PiecewiseConst>,
    /// Core-seconds of compute per training sample at [`REF_LBS`].
    cost_per_sample: f64,
    /// Fixed per-iteration overhead in seconds (framework + update costs).
    overhead: f64,
    /// Batch-scaling exponent in (0, 1]; 1 = linear.
    batch_exponent: f64,
}

impl ComputeModel {
    pub fn new(capacity: Vec<PiecewiseConst>, cost_per_sample: f64, overhead: f64) -> Self {
        assert!(!capacity.is_empty());
        assert!(cost_per_sample > 0.0 && overhead >= 0.0);
        ComputeModel {
            capacity,
            cost_per_sample,
            overhead,
            batch_exponent: 1.0,
        }
    }

    /// Set the batch-scaling exponent (see module docs).
    pub fn with_batch_exponent(mut self, beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "batch exponent must be in (0, 1]"
        );
        self.batch_exponent = beta;
        self
    }

    pub fn batch_exponent(&self) -> f64 {
        self.batch_exponent
    }

    /// Homogeneous cluster of `n` workers with `units` capacity each.
    pub fn homogeneous(n: usize, units: f64, cost_per_sample: f64, overhead: f64) -> Self {
        ComputeModel::new(
            vec![PiecewiseConst::constant(units); n],
            cost_per_sample,
            overhead,
        )
    }

    /// Heterogeneous cluster from constant per-worker capacities.
    pub fn heterogeneous(units: &[f64], cost_per_sample: f64, overhead: f64) -> Self {
        ComputeModel::new(
            units.iter().map(|&u| PiecewiseConst::constant(u)).collect(),
            cost_per_sample,
            overhead,
        )
    }

    pub fn n(&self) -> usize {
        self.capacity.len()
    }

    pub fn cost_per_sample(&self) -> f64 {
        self.cost_per_sample
    }

    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Capacity units of worker `w` at time `t`.
    pub fn capacity_at(&self, w: usize, t: f64) -> f64 {
        self.capacity[w].value_at(t)
    }

    /// Replace one worker's capacity schedule.
    pub fn set_capacity(&mut self, w: usize, schedule: PiecewiseConst) {
        self.capacity[w] = schedule;
    }

    /// Multiply one worker's capacity schedule by a dimensionless factor
    /// schedule (a scenario's diurnal wave, an outage window, ...).
    pub fn scale_capacity(&mut self, w: usize, factor: &PiecewiseConst) {
        self.capacity[w] = self.capacity[w].product_with(factor);
    }

    /// Time for worker `w` to execute one iteration over `lbs` samples
    /// starting at time `t` (capacity sampled at iteration start).
    pub fn iter_time(&self, w: usize, lbs: usize, t: f64) -> f64 {
        let cap = self.capacity_at(w, t);
        assert!(cap > 0.0, "worker {w} has zero capacity at t={t}");
        let effective = REF_LBS * (lbs as f64 / REF_LBS).powf(self.batch_exponent);
        self.overhead + effective * self.cost_per_sample / cap
    }

    /// Profile worker `w` at time `t`: measured `(lbs, seconds)` pairs with
    /// multiplicative measurement noise of relative std `noise`.
    pub fn profile(
        &self,
        w: usize,
        lbs_values: &[usize],
        t: f64,
        noise: f64,
        rng: &mut DetRng,
    ) -> Vec<(f64, f64)> {
        assert!(noise >= 0.0);
        lbs_values
            .iter()
            .map(|&lbs| {
                let base = self.iter_time(w, lbs, t);
                let factor = (1.0 + rng.normal_ms(0.0, noise)).max(0.1);
                (lbs as f64, base * factor)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_time_linear_in_lbs() {
        let cm = ComputeModel::homogeneous(2, 24.0, 1.425, 0.1);
        let t32 = cm.iter_time(0, 32, 0.0);
        let t64 = cm.iter_time(0, 64, 0.0);
        assert!((t32 - (0.1 + 32.0 * 1.425 / 24.0)).abs() < 1e-12);
        // Doubling lbs doubles the variable part only.
        assert!((t64 - 0.1 - 2.0 * (t32 - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_capacities() {
        let cm = ComputeModel::heterogeneous(&[24.0, 12.0, 4.0], 1.425, 0.0);
        let t_fast = cm.iter_time(0, 32, 0.0);
        let t_mid = cm.iter_time(1, 32, 0.0);
        let t_slow = cm.iter_time(2, 32, 0.0);
        assert!((t_mid / t_fast - 2.0).abs() < 1e-9);
        assert!((t_slow / t_fast - 6.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_capacity_changes_iter_time() {
        let mut cm = ComputeModel::homogeneous(1, 24.0, 1.425, 0.1);
        cm.set_capacity(0, PiecewiseConst::steps(vec![(0.0, 24.0), (100.0, 12.0)]));
        let before = cm.iter_time(0, 32, 50.0);
        let after = cm.iter_time(0, 32, 150.0);
        assert!(after > before);
        assert!(((after - 0.1) / (before - 0.1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn batch_exponent_sublinear_scaling() {
        let lin = ComputeModel::homogeneous(1, 24.0, 1.425, 0.1);
        let sub = ComputeModel::homogeneous(1, 24.0, 1.425, 0.1).with_batch_exponent(0.75);
        // Identical at the reference batch size.
        assert!((lin.iter_time(0, 32, 0.0) - sub.iter_time(0, 32, 0.0)).abs() < 1e-12);
        // Sublinear above it, superlinear cost-saving: 8x batch < 8x time.
        let t32 = sub.iter_time(0, 32, 0.0) - 0.1;
        let t256 = sub.iter_time(0, 256, 0.0) - 0.1;
        assert!(
            t256 / t32 < 8.0,
            "sublinear scaling expected: {}",
            t256 / t32
        );
        assert!((t256 / t32 - 8.0f64.powf(0.75)).abs() < 1e-9);
        // Per-sample throughput improves with batch size.
        let thr32 = 32.0 / sub.iter_time(0, 32, 0.0);
        let thr256 = 256.0 / sub.iter_time(0, 256, 0.0);
        assert!(thr256 > thr32);
    }

    #[test]
    #[should_panic(expected = "batch exponent")]
    fn bad_batch_exponent_panics() {
        let _ = ComputeModel::homogeneous(1, 24.0, 1.0, 0.0).with_batch_exponent(1.5);
    }

    #[test]
    fn profile_is_roughly_linear() {
        let cm = ComputeModel::homogeneous(1, 24.0, 1.425, 0.1);
        let mut rng = DetRng::seed_from_u64(1);
        let samples = cm.profile(0, &[8, 16, 32, 64, 128], 0.0, 0.02, &mut rng);
        assert_eq!(samples.len(), 5);
        let xs: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let (a, b) = dlion_tensor::stats::linear_fit(&xs, &ys);
        assert!((a - 0.1).abs() < 0.05, "intercept {a}");
        assert!((b - 1.425 / 24.0).abs() < 0.01, "slope {b}");
    }

    #[test]
    fn profile_noise_zero_is_exact() {
        let cm = ComputeModel::homogeneous(1, 12.0, 2.0, 0.05);
        let mut rng = DetRng::seed_from_u64(2);
        let samples = cm.profile(0, &[10, 20], 0.0, 0.0, &mut rng);
        assert_eq!(samples[0].1, cm.iter_time(0, 10, 0.0));
        assert_eq!(samples[1].1, cm.iter_time(0, 20, 0.0));
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_panics() {
        let cm = ComputeModel::heterogeneous(&[0.0], 1.0, 0.0);
        cm.iter_time(0, 32, 0.0);
    }
}
