//! The topology plane: who exchanges gradients with whom, per round.
//!
//! DLion's prototype assumes a full mesh; this crate generalizes the
//! communication graph into a [`TopologySchedule`] — a per-round neighbor
//! oracle both backends (the discrete-event simulator and the live TCP
//! driver) consume. A schedule is a *pure function* of
//! `(spec, n, seed, round, worker)`, so every worker of a cluster — in
//! one process or across hosts — derives bit-identical neighbor sets
//! without any coordination traffic.
//!
//! Specs ([`Topology`]) cover:
//!
//! * `full` — everyone talks to everyone (the paper's setting);
//! * `ring` — `w ± 1 (mod n)`;
//! * `star:H` — hub-and-spoke around worker `H`;
//! * `kregular:K` — a seeded circulant gossip graph of degree exactly
//!   `K` whose offsets are re-drawn every round (AD-PSGD-style rotating
//!   gossip; connectivity is forced per round via a gcd repair);
//! * `groups:G` — `G` gossip groups whose *membership* reshuffles every
//!   round, in the style of Hivemind's Moshpit averaging: each round is
//!   group-wise all-reduce, mixing happens across rounds;
//! * `hier:G` — hierarchical micro-cloud-of-micro-clouds: `G` fixed
//!   groups, a per-group aggregator rank that rotates each round;
//!   members talk to their aggregator, aggregators to each other.
//!
//! Every schedule is **symmetric within a round** (`j ∈ nbrs(i, r)` ⇔
//! `i ∈ nbrs(j, r)`) — the property BSP gating relies on: the peers a
//! worker waits on for round `r` are exactly the peers that sent to it
//! in round `r`.
//!
//! Construction is validated ([`Topology::validate`] / [`Topology::build`]
//! return a typed [`TopoError`]); the neighbor accessors themselves are
//! total and never panic, so a bad `--topology` flag surfaces as a usage
//! error at the CLI instead of an assert deep in the runner.

use dlion_tensor::DetRng;
use std::sync::Arc;

/// Stream-id salt for per-round topology RNG draws. The schedule derives
/// its randomness from `seed ^ TOPO_SALT ^ mix(round)`, a stream disjoint
/// from every RNG the training path consumes (model init, shard shuffle,
/// batch sampling all derive from the *root* RNG in draw order) — adding
/// or consulting the topology plane can never perturb training draws.
const TOPO_SALT: u64 = 0x544F_504F_4752_4150; // "TOPOGRAP"

fn round_rng(seed: u64, round: u64) -> DetRng {
    DetRng::seed_from_u64(seed ^ TOPO_SALT ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A rejected topology spec: wrong shape for the cluster size, or a
/// parameter out of range. Carries a human-readable reason the CLI layer
/// turns into a usage error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoError {
    pub reason: String,
}

impl TopoError {
    fn new(reason: impl Into<String>) -> TopoError {
        TopoError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for TopoError {}

/// Which peers each worker talks to — the parsed `--topology` spec.
///
/// ```
/// use dlion_topo::Topology;
///
/// assert_eq!(Topology::Ring.neighbors(0, 6), vec![1, 5]);
/// assert_eq!(Topology::FullMesh.link_count(6), 30);
/// assert!(Topology::Star { hub: 2 }.is_connected(6));
/// assert_eq!(Topology::parse("kregular:2"), Ok(Topology::KRegular { k: 2 }));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Everyone talks to everyone (the paper's setting).
    FullMesh,
    /// Worker `w` talks to `w±1 (mod n)`.
    Ring,
    /// Every worker talks only to the hub; the hub talks to everyone.
    /// (Approximates a parameter-server layout inside the decentralized
    /// framework.)
    Star { hub: usize },
    /// Seeded degree-`k` circulant gossip graph, offsets re-drawn each
    /// round.
    KRegular { k: usize },
    /// `g` gossip groups with Moshpit-style membership reshuffling each
    /// round; exchange is group-wise all-to-all.
    Groups { g: usize },
    /// `g` fixed micro-cloud groups, rotating per-group aggregator;
    /// members ↔ aggregator, aggregator ↔ aggregator.
    Hier { g: usize },
}

impl Topology {
    /// Parse a `--topology` value: `full|ring|star:H|kregular:K|groups:G|hier:G`.
    pub fn parse(s: &str) -> Result<Topology, String> {
        let bad_num = |what: &str, v: &str| format!("bad {what} '{v}' (want a number)");
        match s {
            "full" | "full-mesh" | "mesh" => return Ok(Topology::FullMesh),
            "ring" => return Ok(Topology::Ring),
            "star" => return Ok(Topology::Star { hub: 0 }),
            _ => {}
        }
        if let Some(v) = s.strip_prefix("star:") {
            let hub = v.parse().map_err(|_| bad_num("star hub", v))?;
            return Ok(Topology::Star { hub });
        }
        if let Some(v) = s.strip_prefix("kregular:") {
            let k = v.parse().map_err(|_| bad_num("kregular degree", v))?;
            return Ok(Topology::KRegular { k });
        }
        if let Some(v) = s.strip_prefix("groups:") {
            let g = v.parse().map_err(|_| bad_num("group count", v))?;
            return Ok(Topology::Groups { g });
        }
        if let Some(v) = s.strip_prefix("hier:") {
            let g = v.parse().map_err(|_| bad_num("group count", v))?;
            return Ok(Topology::Hier { g });
        }
        Err(format!(
            "unknown topology '{s}' (want full|ring|star:H|kregular:K|groups:G|hier:G)"
        ))
    }

    /// The parseable form ([`Topology::parse`] round-trips it) — what
    /// `dlion-live` forwards to `dlion-worker` children.
    pub fn render(&self) -> String {
        match self {
            Topology::FullMesh => "full".into(),
            Topology::Ring => "ring".into(),
            Topology::Star { hub } => format!("star:{hub}"),
            Topology::KRegular { k } => format!("kregular:{k}"),
            Topology::Groups { g } => format!("groups:{g}"),
            Topology::Hier { g } => format!("hier:{g}"),
        }
    }

    /// Display name (used in trace events and figure tables).
    pub fn name(&self) -> String {
        match self {
            Topology::FullMesh => "full-mesh".into(),
            Topology::Ring => "ring".into(),
            Topology::Star { hub } => format!("star(hub={hub})"),
            Topology::KRegular { k } => format!("kregular(k={k})"),
            Topology::Groups { g } => format!("groups(g={g})"),
            Topology::Hier { g } => format!("hier(g={g})"),
        }
    }

    /// Construction-time validation against a concrete cluster size: the
    /// typed replacement for the old assert-in-`neighbors` paths. `seed`
    /// participates because rotating-group connectivity is seed-dependent.
    pub fn validate(&self, n: usize, seed: u64) -> Result<(), TopoError> {
        if n < 2 {
            return Err(TopoError::new(format!(
                "topology needs at least 2 workers (got {n})"
            )));
        }
        match *self {
            Topology::FullMesh | Topology::Ring => Ok(()),
            Topology::Star { hub } => {
                if hub >= n {
                    return Err(TopoError::new(format!(
                        "star hub {hub} out of range for {n} workers"
                    )));
                }
                Ok(())
            }
            Topology::KRegular { k } => {
                if k == 0 || k >= n {
                    return Err(TopoError::new(format!(
                        "kregular degree {k} out of range for {n} workers (want 1..={})",
                        n - 1
                    )));
                }
                if k % 2 == 1 && n % 2 == 1 {
                    return Err(TopoError::new(format!(
                        "kregular odd degree {k} needs an even worker count (got {n})"
                    )));
                }
                if k / 2 > (n - 1) / 2 {
                    return Err(TopoError::new(format!(
                        "kregular degree {k} too high for {n} workers"
                    )));
                }
                Ok(())
            }
            Topology::Groups { g } => {
                if g == 0 || g > n / 2 {
                    return Err(TopoError::new(format!(
                        "group count {g} out of range for {n} workers (want 1..={}, \
                         so every group has at least 2 members)",
                        n / 2
                    )));
                }
                // Rotating membership must mix the groups into one
                // connected component within the union window; this is
                // seed-dependent, so check the actual schedule.
                let sched = GroupSchedule {
                    n,
                    g,
                    seed,
                    memo: std::sync::Mutex::new(std::collections::HashMap::new()),
                };
                if !sched.is_connected_over(&vec![true; n], 0) {
                    return Err(TopoError::new(format!(
                        "groups:{g} does not mix into a connected cluster \
                         for n={n} seed={seed} (try another seed)"
                    )));
                }
                Ok(())
            }
            Topology::Hier { g } => {
                if g == 0 || g > n {
                    return Err(TopoError::new(format!(
                        "group count {g} out of range for {n} workers (want 1..={n})"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Does the neighbor set vary by round?
    pub fn rotates(&self, n: usize) -> bool {
        match *self {
            Topology::FullMesh | Topology::Ring | Topology::Star { .. } => false,
            // Rotation is real only when more than one offset set exists.
            Topology::KRegular { k } => k / 2 < (n - 1) / 2,
            Topology::Groups { g } => g > 1,
            // Aggregators rotate only inside groups with >1 member.
            Topology::Hier { g } => g < n,
        }
    }

    /// How many consecutive rounds it takes for the union graph to be
    /// meaningfully mixed — the window connectivity checks look across.
    /// Per-round-connected topologies use 1; rotating groups (whose
    /// single-round graph is disconnected *by design*) use a few
    /// reshuffles.
    pub fn connectivity_window(&self) -> u64 {
        match *self {
            Topology::Groups { g } => 4 + g as u64,
            _ => 1,
        }
    }

    /// Build the validated per-round schedule for an `n`-worker cluster.
    pub fn build(&self, n: usize, seed: u64) -> Result<Arc<dyn TopologySchedule>, TopoError> {
        self.validate(n, seed)?;
        Ok(match *self {
            Topology::FullMesh | Topology::Ring | Topology::Star { .. } => {
                Arc::new(StaticSchedule {
                    spec: *self,
                    n,
                    seed,
                })
            }
            Topology::KRegular { k } => Arc::new(KRegularSchedule {
                n,
                k,
                seed,
                memo: std::sync::Mutex::new(std::collections::HashMap::new()),
            }),
            Topology::Groups { g } => Arc::new(GroupSchedule {
                n,
                g,
                seed,
                memo: std::sync::Mutex::new(std::collections::HashMap::new()),
            }),
            Topology::Hier { g } => Arc::new(HierSchedule { n, g, seed }),
        })
    }

    /// Round-0 neighbor ids of worker `w` in an `n`-worker cluster, in id
    /// order. Total: an invalid spec yields an empty set instead of a
    /// panic (validation is the job of [`Topology::validate`]).
    pub fn neighbors(&self, w: usize, n: usize) -> Vec<usize> {
        if w >= n {
            return Vec::new();
        }
        self.build(n, 0)
            .map(|s| s.neighbors(w, 0))
            .unwrap_or_default()
    }

    /// Total directed links in the round-0 graph.
    pub fn link_count(&self, n: usize) -> usize {
        (0..n).map(|w| self.neighbors(w, n).len()).sum()
    }

    /// True if the (window-unioned) reachability graph is connected
    /// (required for decentralized training to converge to a common
    /// model). Uses seed 0; seed-sensitive callers go through
    /// [`Topology::validate`] / [`TopologySchedule::is_connected_over`].
    pub fn is_connected(&self, n: usize) -> bool {
        self.build(n, 0)
            .map(|s| s.is_connected_over(&vec![true; n], 0))
            .unwrap_or(false)
    }
}

/// A per-round neighbor oracle for one concrete `(spec, n, seed)` cluster.
///
/// Implementations are pure: `neighbors(w, round)` depends on nothing but
/// the constructor arguments, so the simulator and every live worker
/// derive identical sets with no coordination. All sets are sorted by id
/// and symmetric within a round.
pub trait TopologySchedule: Send + Sync {
    fn n(&self) -> usize;
    fn spec(&self) -> Topology;

    /// Neighbor ids of worker `w` for round `round`, in id order.
    fn neighbors(&self, w: usize, round: u64) -> Vec<usize>;

    fn name(&self) -> String {
        self.spec().name()
    }

    fn rotates(&self) -> bool {
        self.spec().rotates(self.n())
    }

    /// Total directed links declared for `round`.
    fn link_count(&self, round: u64) -> usize {
        (0..self.n()).map(|w| self.neighbors(w, round).len()).sum()
    }

    /// Is the cluster restricted to `alive` workers still connected,
    /// looking across the spec's connectivity window starting at `round`?
    /// The live driver's churn guard: `false` after a demotion means the
    /// survivors have partitioned.
    fn is_connected_over(&self, alive: &[bool], round: u64) -> bool {
        let n = self.n();
        debug_assert_eq!(alive.len(), n);
        let total = alive.iter().filter(|&&a| a).count();
        if total <= 1 {
            return true; // a lone survivor is trivially connected
        }
        let Some(start) = (0..n).find(|&w| alive[w]) else {
            return true;
        };
        // BFS over the union of the window's per-round graphs.
        let window = self.spec().connectivity_window();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        let mut reached = 1usize;
        while let Some(w) = stack.pop() {
            for r in round..round + window {
                for j in self.neighbors(w, r) {
                    if alive[j] && !seen[j] {
                        seen[j] = true;
                        reached += 1;
                        stack.push(j);
                    }
                }
            }
        }
        reached == total
    }

    /// Which peers worker `w` ever exchanges with during rounds
    /// `0..rounds` — the links a live transport actually needs to dial.
    fn union_links(&self, w: usize, rounds: u64) -> Vec<bool> {
        let mut links = vec![false; self.n()];
        let last = if self.rotates() { rounds.max(1) } else { 1 };
        for r in 0..last {
            for j in self.neighbors(w, r) {
                links[j] = true;
            }
        }
        links
    }
}

/// FullMesh / Ring / Star: the fixed sets of the original `Topology` enum.
pub struct StaticSchedule {
    spec: Topology,
    n: usize,
    #[allow(dead_code)]
    seed: u64,
}

impl TopologySchedule for StaticSchedule {
    fn n(&self) -> usize {
        self.n
    }

    fn spec(&self) -> Topology {
        self.spec
    }

    fn neighbors(&self, w: usize, _round: u64) -> Vec<usize> {
        let n = self.n;
        if w >= n {
            return Vec::new();
        }
        match self.spec {
            Topology::FullMesh => (0..n).filter(|&j| j != w).collect(),
            Topology::Ring => {
                if n == 2 {
                    return vec![1 - w];
                }
                let prev = (w + n - 1) % n;
                let next = (w + 1) % n;
                let mut v = vec![prev, next];
                v.sort_unstable();
                v.dedup();
                v
            }
            Topology::Star { hub } => {
                if hub >= n {
                    return Vec::new(); // invalid spec: total, not a panic
                }
                if w == hub {
                    (0..n).filter(|&j| j != hub).collect()
                } else {
                    vec![hub]
                }
            }
            _ => unreachable!("StaticSchedule only wraps fixed specs"),
        }
    }
}

/// Degree-`k` circulant graph on `n` nodes whose offset set is re-drawn
/// from the seed every round: neighbors of `w` are `w ± o (mod n)` for
/// each chosen offset `o`. Offsets are distinct values in `1..=(n-1)/2`
/// (each contributing two neighbors), plus the diameter `n/2` when `k`
/// is odd (contributing one). If the drawn offsets share a factor with
/// `n` (a disconnected circulant), the first offset is repaired to 1 —
/// deterministically, so every worker agrees.
pub struct KRegularSchedule {
    n: usize,
    k: usize,
    seed: u64,
    /// Memoized per-round offset sets. `neighbors` is called ~k times per
    /// worker per round from the runner's hot path — and with rounds
    /// interleaved (gradient application looks up the *sender's* round) —
    /// so this is a map, not a single slot; without it each call re-shuffles
    /// an O(n) candidate vector. Entries are a handful of usizes; the map is
    /// cleared if it ever grows past `MEMO_CAP` rounds.
    memo: std::sync::Mutex<std::collections::HashMap<u64, Vec<usize>>>,
}

/// Bound on memoized rounds per schedule before the cache resets.
const MEMO_CAP: usize = 4096;

impl KRegularSchedule {
    fn offsets(&self, round: u64) -> Vec<usize> {
        let mut memo = self.memo.lock().unwrap();
        if let Some(offs) = memo.get(&round) {
            return offs.clone();
        }
        if memo.len() >= MEMO_CAP {
            memo.clear();
        }
        let offs = self.compute_offsets(round);
        memo.insert(round, offs.clone());
        offs
    }

    fn compute_offsets(&self, round: u64) -> Vec<usize> {
        let (n, k) = (self.n, self.k);
        let half = (n - 1) / 2;
        let paired = k / 2;
        let mut candidates: Vec<usize> = (1..=half).collect();
        let mut rng = round_rng(self.seed, round);
        rng.shuffle(&mut candidates);
        candidates.truncate(paired);
        if k % 2 == 1 {
            candidates.push(n / 2);
        }
        let g = candidates.iter().fold(n, |acc, &o| gcd(acc, o));
        if g != 1 {
            // All offsets share a factor with n: the circulant would
            // split into g components. Offset 1 is coprime with
            // everything and cannot already be present (it would have
            // made the gcd 1).
            candidates[0] = 1;
        }
        candidates
    }
}

impl TopologySchedule for KRegularSchedule {
    fn n(&self) -> usize {
        self.n
    }

    fn spec(&self) -> Topology {
        Topology::KRegular { k: self.k }
    }

    fn neighbors(&self, w: usize, round: u64) -> Vec<usize> {
        let n = self.n;
        if w >= n {
            return Vec::new();
        }
        let mut v: Vec<usize> = Vec::with_capacity(self.k);
        for o in self.offsets(round) {
            v.push((w + o) % n);
            v.push((w + n - o) % n);
        }
        v.sort_unstable();
        v.dedup();
        v.retain(|&j| j != w);
        v
    }
}

/// `g` gossip groups whose membership is a fresh seeded shuffle every
/// round (Moshpit-style): position `i` of the round's permutation lands
/// in group `i % g`, so group sizes never differ by more than one, and
/// successive rounds mix members across groups. Within a group the
/// exchange is all-to-all; across groups there is no round-`r` edge —
/// connectivity is a property of the union window.
pub struct GroupSchedule {
    n: usize,
    g: usize,
    seed: u64,
    /// Memoized per-round `(group id per worker, sorted members per group)`
    /// — shared by all n `neighbors` calls of a round instead of
    /// re-shuffling the full permutation per call. A map because the runner
    /// interleaves rounds (see [`KRegularSchedule::offsets`]).
    memo: std::sync::Mutex<std::collections::HashMap<u64, std::sync::Arc<Membership>>>,
}

struct Membership {
    group_of: Vec<usize>,
    members: Vec<Vec<usize>>,
}

impl GroupSchedule {
    /// The round's permutation: `perm[i]` is the worker at position `i`.
    fn perm(&self, round: u64) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..self.n).collect();
        if self.g > 1 {
            round_rng(self.seed, round).shuffle(&mut perm);
        }
        perm
    }

    fn membership(&self, round: u64) -> std::sync::Arc<Membership> {
        let mut memo = self.memo.lock().unwrap();
        if let Some(m) = memo.get(&round) {
            return m.clone();
        }
        if memo.len() >= MEMO_CAP {
            memo.clear();
        }
        let perm = self.perm(round);
        let mut group_of = vec![0usize; self.n];
        let mut members = vec![Vec::new(); self.g];
        for (pos, &w) in perm.iter().enumerate() {
            group_of[w] = pos % self.g;
            members[pos % self.g].push(w);
        }
        for m in &mut members {
            m.sort_unstable();
        }
        let m = std::sync::Arc::new(Membership { group_of, members });
        memo.insert(round, m.clone());
        m
    }
}

impl TopologySchedule for GroupSchedule {
    fn n(&self) -> usize {
        self.n
    }

    fn spec(&self) -> Topology {
        Topology::Groups { g: self.g }
    }

    fn neighbors(&self, w: usize, round: u64) -> Vec<usize> {
        if w >= self.n {
            return Vec::new();
        }
        let m = self.membership(round);
        let mut v = m.members[m.group_of[w]].clone();
        v.retain(|&j| j != w);
        v
    }
}

/// Hierarchical micro-cloud-of-micro-clouds: `g` fixed contiguous groups
/// (worker `w` belongs to group `w·g/n`), each with an aggregator rank
/// that rotates through the group's members round-robin. Members talk
/// only to their group's aggregator; aggregators talk to each other —
/// per-round star-in-group plus mesh-of-aggregators, connected every
/// round.
pub struct HierSchedule {
    n: usize,
    g: usize,
    seed: u64,
}

impl HierSchedule {
    fn group_of(&self, w: usize) -> usize {
        w * self.g / self.n
    }

    fn members(&self, c: usize) -> Vec<usize> {
        (0..self.n).filter(|&w| self.group_of(w) == c).collect()
    }

    /// The group's aggregator for `round`: rotates through members, with
    /// a per-group seeded phase so aggregator duty doesn't land on every
    /// group's first rank simultaneously.
    fn aggregator(&self, c: usize, round: u64) -> usize {
        let members = self.members(c);
        let phase = (self.seed ^ TOPO_SALT).wrapping_add(c as u64) % members.len() as u64;
        members[((round + phase) % members.len() as u64) as usize]
    }
}

impl TopologySchedule for HierSchedule {
    fn n(&self) -> usize {
        self.n
    }

    fn spec(&self) -> Topology {
        Topology::Hier { g: self.g }
    }

    fn neighbors(&self, w: usize, round: u64) -> Vec<usize> {
        if w >= self.n {
            return Vec::new();
        }
        let c = self.group_of(w);
        let agg = self.aggregator(c, round);
        if w != agg {
            return vec![agg];
        }
        let mut v: Vec<usize> = self.members(c).into_iter().filter(|&j| j != w).collect();
        v.extend(
            (0..self.g)
                .filter(|&d| d != c)
                .map(|d| self.aggregator(d, round)),
        );
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_SPECS: [Topology; 6] = [
        Topology::FullMesh,
        Topology::Ring,
        Topology::Star { hub: 2 },
        Topology::KRegular { k: 2 },
        Topology::Groups { g: 2 },
        Topology::Hier { g: 2 },
    ];

    #[test]
    fn full_mesh_neighbors() {
        let t = Topology::FullMesh;
        assert_eq!(t.neighbors(2, 4), vec![0, 1, 3]);
        assert_eq!(t.link_count(6), 30);
        assert!(t.is_connected(6));
    }

    #[test]
    fn ring_neighbors() {
        let t = Topology::Ring;
        assert_eq!(t.neighbors(0, 6), vec![1, 5]);
        assert_eq!(t.neighbors(3, 6), vec![2, 4]);
        assert_eq!(t.neighbors(5, 6), vec![0, 4]);
        assert_eq!(t.link_count(6), 12);
        assert!(t.is_connected(6));
        assert_eq!(t.neighbors(0, 2), vec![1]);
        assert_eq!(t.neighbors(1, 2), vec![0]);
        assert_eq!(t.neighbors(0, 3), vec![1, 2]);
    }

    #[test]
    fn star_neighbors() {
        let t = Topology::Star { hub: 2 };
        assert_eq!(t.neighbors(2, 5), vec![0, 1, 3, 4]);
        assert_eq!(t.neighbors(0, 5), vec![2]);
        assert_eq!(t.link_count(5), 8);
        assert!(t.is_connected(5));
    }

    #[test]
    fn ring_cheaper_than_mesh() {
        for n in [3usize, 6, 10] {
            assert!(Topology::Ring.link_count(n) <= Topology::FullMesh.link_count(n));
        }
    }

    #[test]
    fn invalid_specs_are_typed_errors_not_panics() {
        // The old assert paths: hub out of range, w >= n.
        let bad_hub = Topology::Star { hub: 9 };
        assert!(bad_hub.validate(4, 0).is_err());
        assert_eq!(bad_hub.neighbors(0, 4), Vec::<usize>::new());
        assert_eq!(Topology::Ring.neighbors(7, 4), Vec::<usize>::new());
        // Parameter-range validation per spec.
        assert!(Topology::KRegular { k: 0 }.validate(4, 0).is_err());
        assert!(Topology::KRegular { k: 4 }.validate(4, 0).is_err());
        assert!(
            Topology::KRegular { k: 3 }.validate(5, 0).is_err(),
            "odd k, odd n"
        );
        assert!(Topology::KRegular { k: 3 }.validate(6, 0).is_ok());
        assert!(Topology::Groups { g: 0 }.validate(6, 0).is_err());
        assert!(
            Topology::Groups { g: 4 }.validate(6, 0).is_err(),
            "singleton groups"
        );
        assert!(Topology::Hier { g: 7 }.validate(6, 0).is_err());
        assert!(Topology::FullMesh.validate(1, 0).is_err(), "n < 2");
        let err = bad_hub.validate(4, 0).unwrap_err();
        assert!(err.reason.contains("out of range"), "{err}");
    }

    #[test]
    fn parse_and_render_round_trip() {
        for (s, want) in [
            ("full", Topology::FullMesh),
            ("ring", Topology::Ring),
            ("star:3", Topology::Star { hub: 3 }),
            ("kregular:2", Topology::KRegular { k: 2 }),
            ("groups:4", Topology::Groups { g: 4 }),
            ("hier:2", Topology::Hier { g: 2 }),
        ] {
            let spec = Topology::parse(s).unwrap();
            assert_eq!(spec, want);
            assert_eq!(Topology::parse(&spec.render()).unwrap(), spec);
        }
        assert_eq!(Topology::parse("star").unwrap(), Topology::Star { hub: 0 });
        assert!(Topology::parse("torus").is_err());
        assert!(Topology::parse("kregular:x").is_err());
        assert!(Topology::parse("groups:").is_err());
    }

    /// Symmetry within a round is what BSP gating relies on.
    #[test]
    fn all_schedules_are_symmetric_every_round() {
        for spec in ALL_SPECS {
            for n in [4usize, 5, 9] {
                if spec.validate(n, 7).is_err() {
                    continue;
                }
                let s = spec.build(n, 7).unwrap();
                for round in 0..12u64 {
                    for w in 0..n {
                        for j in s.neighbors(w, round) {
                            assert!(
                                s.neighbors(j, round).contains(&w),
                                "{} n={n} round={round}: {w}→{j} but not {j}→{w}",
                                spec.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        for spec in ALL_SPECS {
            let a = spec.build(8, 42).unwrap();
            let b = spec.build(8, 42).unwrap();
            for round in 0..8u64 {
                for w in 0..8 {
                    let nb = a.neighbors(w, round);
                    assert_eq!(nb, b.neighbors(w, round), "{}", spec.name());
                    let mut sorted = nb.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(nb, sorted, "{} sorted+deduped", spec.name());
                    assert!(!nb.contains(&w), "{} no self-loop", spec.name());
                }
            }
        }
    }

    #[test]
    fn kregular_has_exact_degree_and_rotates() {
        for (n, k) in [(8usize, 2usize), (9, 2), (8, 3), (10, 4), (9, 4)] {
            let s = Topology::KRegular { k }.build(n, 3).unwrap();
            let mut distinct = std::collections::BTreeSet::new();
            for round in 0..16u64 {
                for w in 0..n {
                    assert_eq!(
                        s.neighbors(w, round).len(),
                        k,
                        "n={n} k={k} round={round} w={w}"
                    );
                }
                assert!(s.is_connected_over(&vec![true; n], round));
                distinct.insert(s.neighbors(0, round));
            }
            if (Topology::KRegular { k }).rotates(n) {
                assert!(distinct.len() > 1, "n={n} k={k} should rotate");
            }
        }
    }

    #[test]
    fn kregular_gcd_repair_keeps_rounds_connected() {
        // n=9: offset 3 alone would split into 3 components; every round
        // must still be connected thanks to the deterministic repair.
        let s = Topology::KRegular { k: 2 }.build(9, 0).unwrap();
        for round in 0..64u64 {
            assert!(s.is_connected_over(&[true; 9], round), "round {round}");
        }
    }

    #[test]
    fn groups_are_balanced_and_mix_across_rounds() {
        let n = 10;
        let s = Topology::Groups { g: 3 }.build(n, 11).unwrap();
        let mut ever: std::collections::BTreeSet<(usize, usize)> = Default::default();
        for round in 0..8u64 {
            // Every worker's group (itself + neighbors) has balanced size.
            for w in 0..n {
                let size = s.neighbors(w, round).len() + 1;
                assert!((3..=4).contains(&size), "round={round} w={w} size={size}");
            }
            for j in s.neighbors(0, round) {
                ever.insert((0, j));
            }
        }
        // Moshpit-style mixing: worker 0 meets more peers than one
        // static group could ever hold.
        assert!(ever.len() > 3, "rotation should mix groups, saw {ever:?}");
        assert!(s.rotates());
    }

    #[test]
    fn hier_members_see_aggregator_and_rotation_shares_duty() {
        let n = 8;
        let s = Topology::Hier { g: 2 }.build(n, 5).unwrap();
        let mut aggs_seen = std::collections::BTreeSet::new();
        for round in 0..8u64 {
            assert!(s.is_connected_over(&vec![true; n], round));
            // Exactly g workers have more than one neighbor (the
            // aggregators); everyone else sees exactly one.
            let degrees: Vec<usize> = (0..n).map(|w| s.neighbors(w, round).len()).collect();
            let aggs: Vec<usize> = (0..n).filter(|&w| degrees[w] > 1).collect();
            assert_eq!(aggs.len(), 2, "round={round} degrees={degrees:?}");
            // Aggregators see their 3 group members + the other aggregator.
            for &a in &aggs {
                assert_eq!(degrees[a], 4, "round={round}");
            }
            aggs_seen.extend(aggs);
        }
        assert!(aggs_seen.len() > 2, "aggregator duty should rotate");
    }

    #[test]
    fn partition_detection_over_survivors() {
        // A ring with two dead workers on opposite sides partitions.
        let s = Topology::Ring.build(6, 0).unwrap();
        let mut alive = vec![true; 6];
        alive[1] = false;
        assert!(s.is_connected_over(&alive, 0), "one hole keeps a path");
        alive[4] = false;
        assert!(
            !s.is_connected_over(&alive, 0),
            "two holes partition a ring"
        );
        // The full mesh never partitions while 2+ workers live.
        let m = Topology::FullMesh.build(6, 0).unwrap();
        assert!(m.is_connected_over(&alive, 0));
        // A dead star hub partitions the spokes.
        let star = Topology::Star { hub: 0 }.build(4, 0).unwrap();
        let mut alive = vec![true; 4];
        alive[0] = false;
        assert!(!star.is_connected_over(&alive, 0));
    }

    #[test]
    fn union_links_cover_rotation_and_cut_static_meshes() {
        let ring = Topology::Ring.build(6, 0).unwrap();
        assert_eq!(
            ring.union_links(0, 100),
            vec![false, true, false, false, false, true]
        );
        let kreg = Topology::KRegular { k: 2 }.build(9, 3).unwrap();
        let links = kreg.union_links(0, 64);
        assert!(!links[0], "never a self-link");
        let count = links.iter().filter(|&&l| l).count();
        assert!(count >= 2, "at least one round's links present");
        // Every declared neighbor over those rounds is covered.
        for r in 0..64u64 {
            for j in kreg.neighbors(0, r) {
                assert!(links[j], "round {r} neighbor {j} missing from union");
            }
        }
    }

    #[test]
    fn link_counts_scale_o_nk_not_o_n2() {
        let n = 64;
        let mesh = Topology::FullMesh.build(n, 0).unwrap();
        for spec in [
            Topology::Ring,
            Topology::KRegular { k: 4 },
            Topology::Groups { g: 8 },
            Topology::Hier { g: 8 },
        ] {
            let s = spec.build(n, 9).unwrap();
            for round in 0..4u64 {
                assert!(
                    s.link_count(round) < mesh.link_count(round) / 4,
                    "{} links {} vs mesh {}",
                    spec.name(),
                    s.link_count(round),
                    mesh.link_count(round)
                );
            }
        }
    }
}
