#!/usr/bin/env python3
"""Assemble the results section of EXPERIMENTS.md from the experiment logs.

Reads results/all_run.log and results/rerun.log (later logs override earlier
tables with the same id), pairs each table with its paper-vs-measured
commentary, and rewrites everything between the RESULTS markers in
EXPERIMENTS.md.
"""
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LOGS = [
    ROOT / "results" / "all_run.log",
    ROOT / "results" / "rerun.log",
    ROOT / "results" / "ablations_rerun.log",
]

COMMENTARY = {
    "fig5": (
        "**Paper:** doubling GBS from epoch 0/1 lowers final accuracy; from epoch 2 on the "
        "impact is stable. **Measured:** early doubling clearly hurts (0.29–0.32 vs 0.45) and "
        "late doubling (epoch 8) matches never-doubling (0.456 vs 0.450). The stability point "
        "arrives later than epoch 2 because our SGD regime stays update-bound (divergence #3). "
        "**Verdict: shape holds** (finding 1 exact, finding 2 shifted)."
    ),
    "fig6": (
        "**Paper:** LBS per worker tracks compute capacity and rescales as the GBS controller "
        "grows the global batch. **Measured:** cores 24/24/12/12/4/4 get LBS ≈ 57/57/29/29/10/10 "
        "at GBS 192, rescaling proportionally at every GBS step (ΣLBS = GBS throughout). "
        "**Verdict: matches.**"
    ),
    "fig7": (
        "**Paper:** larger N (more gradient entries exchanged) reaches higher accuracy. "
        "**Measured:** 0.494 (N=1) → 0.620 (N=100), monotone. **Verdict: matches.**"
    ),
    "fig8": (
        "**Paper:** different links carry different partial-gradient sizes according to their "
        "bandwidth. **Measured:** the 100 Mbps link carries ~3.3k entries/message vs ~1.0k on "
        "the 25 Mbps link from the same sender. **Verdict: matches.**"
    ),
    "fig9a": (
        "**Paper:** a moderate DKT period (100) is fastest; too-frequent exchange wastes "
        "network, too-rare foregoes the benefit. **Measured:** period 10 is clearly slowest "
        "(1516 s) — the cost side reproduces — but very long periods are not penalized "
        "(998 s at 500–1000), because our staleness-tolerant SGD regime gains less from "
        "frequent synchronization (divergence #1). **Verdict: partial.**"
    ),
    "fig9b": (
        "**Paper:** DKT_Best2all > DKT_Best2worst > No_DKT. **Measured:** 0.530 > 0.517 > "
        "0.496 — the exact ordering. **Verdict: matches.**"
    ),
    "fig9c": (
        "**Paper:** λ = 0.75 is the sweet spot; λ = 1 (replacement) starts fast but does not "
        "end best; λ = 0 is No_DKT. **Measured:** λ = 0.75 best (0.530), λ = 1 falls back to "
        "0.498, λ = 0 at 0.496. **Verdict: matches.**"
    ),
    "fig11": (
        "**Paper:** DLion best everywhere; improvements over Baseline of 155 %/199 % in Hetero "
        "SYS A/B and 32 % in Homo A. **Measured:** DLion best in Homo A (+6 % over Baseline) "
        "and Hetero SYS B (+39 %); in Hetero SYS A DLion beats Baseline (+24 %), Hop (+23 %) "
        "and Gaia (+15 %) but fully-async Ako overtakes it (divergence #1). "
        "**Verdict: mostly holds** (11 of 12 pairwise orderings vs Baseline/Hop/Gaia)."
    ),
    "fig12": (
        "**Paper:** on the GPU cluster DLion improves 2.3–4.2× over Hop/Gaia/Ako; the network "
        "bottleneck dominates. **Measured:** DLion best in both environments; in Hetero SYS C "
        "it reaches 0.298 vs Ako 0.125 (2.4×), Gaia 0.065 (4.6×), Hop 0.047 (6.3×). "
        "**Verdict: matches, including the rough factors.**"
    ),
    "fig13": (
        "**Paper:** DLion best under compute heterogeneity (avg +32 % over Baseline). "
        "**Measured:** DLion beats Baseline everywhere (up to +84 % in Hetero CPU B) and wins "
        "Homo A; Gaia/Ako edge it in the heterogeneous columns by racing the stragglers "
        "(divergence #1). **Verdict: direction holds vs Baseline/Hop.**"
    ),
    "fig14": (
        "**Paper:** dynamic batching alone speeds time-to-70 % by 22–37 %; weighted updates "
        "add 12–13 % in heterogeneous clusters. **Measured (time-to-50 %):** in Homo A the "
        "paper's ordering reproduces cleanly — DB alone is 33 % faster than no-DBWU and "
        "DB+WU 45 % faster (595 s vs 732 s vs 1091 s). In the heterogeneous-CPU columns DB "
        "remains the enabler (no-DBWU never reaches the target), but adding WU *slows* the "
        "skewed-shard runs: the batch-size weighting under-weights the straggler's "
        "locally-concentrated classes (an interaction absent from the paper's IID setup). "
        "**Verdict: holds in Homo A; WU partially diverges under label skew.**"
    ),
    "fig15": (
        "**Paper:** DLion best in all network environments; dense systems collapse on WANs. "
        "**Measured:** DLion best in all three columns (0.570/0.530/0.498); Baseline drops "
        "45 % from LAN to 50 Mbps WAN while DLion drops 7 %. **Verdict: matches.**"
    ),
    "fig16": (
        "**Paper:** Max10 alone beats the four existing systems in both environments. "
        "**Measured:** Max10 beats Baseline and Hop on the constrained WAN (0.392 vs "
        "0.295/0.281) but trails Gaia/Ako there and everything in Hetero SYS A, where the "
        "binding constraint is the compute straggler that Max N alone cannot address "
        "(divergence #1). **Verdict: partial.**"
    ),
    "fig17": (
        "**Paper:** DLion has much the smallest worker-accuracy deviation; Ako the biggest. "
        "**Measured:** DLion smallest in Hetero NET B (0.014); in Hetero SYS B Gaia's "
        "block-on-delivery is tightest while DLion's deviation (0.036) sits below "
        "Baseline/Hop; our idealized Baseline reaches bit-identical workers in Hetero CPU B "
        "(deviation 0.000, divergence #4). **Verdict: partial.**"
    ),
    "fig18": (
        "**Paper:** DLion handles dynamically changing resources best in both orders. "
        "**Measured:** DLion best in Dynamic SYS A (0.501) and second to Ako in Dynamic "
        "SYS B (0.477 vs 0.521); both beat Baseline by 17–47 %. **Verdict: mostly holds.**"
    ),
    "fig19": (
        "**Paper:** LBS re-balances as available cores change, with GBS pinned to 192. "
        "**Measured:** even 32/32/... under homogeneous cores, 57/57/29/29/10/10 under "
        "24/24/12/12/4/4, back to even at 12 cores each, and mirrored when capacities "
        "reverse — ΣLBS = 192 in every row. **Verdict: matches.**"
    ),
    "fig20": (
        "**Paper:** partial-gradient size follows bandwidth changes (30 ↔ 100 Mbps). "
        "**Measured:** ~1.2–1.6k entries/message during 30 Mbps windows vs ~3.3–3.8k during "
        "100 Mbps windows, switching within one window of each step. **Verdict: matches.**"
    ),
    "fig21": (
        "**Paper:** DLion reaches the highest fully-converged accuracy (26 %/24 % above "
        "Baseline/Hop), faster than Baseline/Hop, slightly slower than Gaia/Ako. "
        "**Measured:** DLion reaches the highest converged accuracy of all systems "
        "(0.717 vs Gaia 0.696, Ako 0.692, Baseline/Hop 0.644 — +11 % over Baseline) and "
        "converges faster than Gaia/Ako (3250 s vs 3500/3750 s): the GBS growth pays off "
        "exactly where the paper says it should, at convergence. **Verdict: matches.**"
    ),
    "table1": (
        "**Paper:** each comparison system needs ≤ 23 changed lines inside the framework. "
        "**Measured:** each system is one plugin file of 39–90 LoC (whole implementation, "
        "not a diff), with synchronization shared as policy enum variants. "
        "**Verdict: the generality claim holds.**"
    ),
    "table2": "The Table 2 bandwidth matrix, encoded 1:1 from the paper.",
    "table3": (
        "The Table 3 environment matrix as materialized by `EnvId::spec()` (Hetero NET B "
        "added for Figure 17, per its caption)."
    ),
    "ablation_dkt": (
        "Reproduction-specific ablation: DKT adds +0.03 accuracy in both environments and "
        "reduces worker deviation in Hetero SYS B."
    ),
    "ablation_min_n": (
        "Reproduction-specific ablation: on Hetero NET A the bandwidth budget never pushes N "
        "down to the floor, so the minimum-N setting is inactive there — it only binds on "
        "severely starved links (see `starved_link_falls_back_to_min_n` in the strategy tests)."
    ),
    "extension_prague": (
        "Extension beyond the paper: Prague-style partial all-reduce (random groups). Small "
        "groups iterate fast but see few peers; DLion remains competitive at a fraction of "
        "the coordination."
    ),
    "extension_topology": (
        "Extension beyond the paper: DLion over the topology plane (DESIGN.md §4i), wire "
        "bytes from the `wire_bytes_by_kind` ledger. Static sparse graphs (ring/star) cut "
        "gradient traffic ~65 % but collapse accuracy (0.22–0.25 vs 0.58): 1–2 inbound "
        "streams per worker starves information propagation. The *rotating* schedules "
        "recover much of the gap at the same order of traffic — Moshpit-style groups(g=2) "
        "reach 0.40 and hierarchical hier(g=2) 0.42 at ~42 % of mesh bytes, because "
        "membership/aggregator rotation mixes information across rounds even though each "
        "round is sparse. kregular(k=2) on 6 workers is forced to the ring by the "
        "connectivity repair (offset 1 is the only coprime choice), hence the identical "
        "row; rotation only kicks in at higher degree or cluster size. The mesh still "
        "wins outright on this WAN task, supporting the paper's all-to-all choice at "
        "paper scale — the plane's payoff is clusters too large to mesh."
    ),
    "verdicts": (
        "Machine-checked shape verdicts over the tables above "
        "(`cargo run -p dlion-experiments --release -- verdicts`)."
    ),
}

tables = {}
order = []
for log in LOGS:
    if not log.exists():
        continue
    text = log.read_text()
    for block in re.findall(r"(^== .+?)\n\n", text, flags=re.M | re.S):
        lines = [l.rstrip() for l in block.split("\n") if not l.startswith("  running")]
        m = re.match(r"== (\S+)", lines[0])
        tid = m.group(1)
        if tid not in tables:
            order.append(tid)
        tables[tid] = "\n".join(lines)

parts = []
for tid in order:
    parts.append(f"```text\n{tables[tid]}\n```\n")
    if tid in COMMENTARY:
        parts.append(COMMENTARY[tid] + "\n")
body = "\n".join(parts)

exp = ROOT / "EXPERIMENTS.md"
text = exp.read_text()
start = text.index("<!-- RESULTS START -->")
end = text.index("<!-- RESULTS END -->")
new = text[: start + len("<!-- RESULTS START -->")] + "\n\n" + body + "\n" + text[end:]
exp.write_text(new)
print(f"wrote {len(order)} tables into EXPERIMENTS.md")
