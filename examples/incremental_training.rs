//! Incremental training with checkpoints — the workflow the paper's
//! introduction motivates: "DL models then periodically start or resume
//! training process with the collected data" (§1).
//!
//! A model trains on the data a micro-cloud has collected so far, is
//! checkpointed, and later *resumes* when a new batch of edge data arrives —
//! without losing the accumulated knowledge, and measurably better than
//! retraining from scratch on the new data alone.
//!
//! ```text
//! cargo run --release --example incremental_training
//! ```

use dlion::nn::serialize::{restore, save_weights};
use dlion::prelude::*;

fn train(model: &mut Model, ds: &Dataset, shard: &[usize], iters: usize, rng: &mut DetRng) {
    let opt = Sgd::new(0.15);
    for _ in 0..iters {
        opt.step(model, ds, shard, 32, rng);
    }
}

fn main() {
    // "Day 1": the micro-cloud has collected 4000 samples.
    let ds = Dataset::synth_vision(12_000, 7);
    let day1: Vec<usize> = (0..4_000).collect();
    let test: Vec<usize> = (10_000..11_000).collect();
    let mut rng = DetRng::seed_from_u64(1);
    let mut model = ModelSpec::Cipher.build(&ds.sample_shape(), ds.classes(), &mut rng);

    train(&mut model, &ds, &day1, 600, &mut rng);
    let day1_acc = model.evaluate(&ds, &test, 200).accuracy;
    println!("after day-1 training:        accuracy {day1_acc:.3}");

    // Checkpoint (in memory here; any Write sink works).
    let mut checkpoint = Vec::new();
    save_weights(&model, &mut checkpoint).expect("checkpoint");
    println!(
        "checkpoint: {} bytes for {} parameters",
        checkpoint.len(),
        model.num_params()
    );

    // "Day 2": 4000 new samples arrive. Resume from the checkpoint...
    let day2: Vec<usize> = (4_000..8_000).collect();
    let mut resumed = ModelSpec::Cipher.build(&ds.sample_shape(), ds.classes(), &mut rng);
    restore(&mut resumed, &mut checkpoint.as_slice()).expect("restore");
    train(&mut resumed, &ds, &day2, 600, &mut rng);
    let resumed_acc = resumed.evaluate(&ds, &test, 200).accuracy;

    // ...versus training from scratch on day-2 data only.
    let mut scratch = ModelSpec::Cipher.build(&ds.sample_shape(), ds.classes(), &mut rng);
    train(&mut scratch, &ds, &day2, 600, &mut rng);
    let scratch_acc = scratch.evaluate(&ds, &test, 200).accuracy;

    println!("resumed + day-2 training:    accuracy {resumed_acc:.3}");
    println!("scratch on day-2 data only:  accuracy {scratch_acc:.3}");
    assert!(
        resumed_acc > day1_acc - 0.05,
        "resuming must not lose knowledge"
    );
    println!("\nresuming from the checkpoint retains day-1 knowledge while learning day-2 data.");
}
