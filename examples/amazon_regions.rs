//! Geo-distributed micro-clouds on the real Amazon WAN matrix (Table 2).
//!
//! Places one micro-cloud in each of the paper's six regions (Virginia,
//! Oregon, Ireland, Mumbai, Seoul, Sydney), wires them with the measured
//! inter-region bandwidths — asymmetric, 30–190 Mbps — and compares the
//! five systems. The scarcest links (Ireland↔Seoul at 30/40 Mbps) make
//! per-link prioritization matter: DLion ships rich gradients between
//! US coasts and thin ones across the Pacific.
//!
//! ```text
//! cargo run --release --example amazon_regions [duration_secs]
//! ```

use dlion::microcloud::{
    amazon_wan_network, region_name, CPU_BATCH_EXPONENT, CPU_COST_PER_SAMPLE, CPU_OVERHEAD,
};
use dlion::prelude::*;

fn main() {
    let duration: f64 = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("duration"))
        .unwrap_or(900.0);

    println!("6 micro-clouds on the Table 2 Amazon WAN, {duration} virtual seconds each\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "system", "accuracy", "iterations", "grad MB"
    );
    let mut dlion_run = None;
    for system in SystemKind::headline() {
        let mut cfg = RunConfig::paper_default(system, ClusterKind::Cpu);
        cfg.duration = duration;
        cfg.trace_links = system == SystemKind::DLion;
        let compute = ComputeModel::homogeneous(6, 24.0, CPU_COST_PER_SAMPLE, CPU_OVERHEAD)
            .with_batch_exponent(CPU_BATCH_EXPONENT);
        let m = dlion::core::run_with_models(&cfg, compute, amazon_wan_network(), "Amazon WAN");
        println!(
            "{:<10} {:>10.3} {:>12} {:>12.0}",
            m.system,
            m.tail_mean_acc(3),
            m.total_iterations(),
            m.grad_bytes / 1e6
        );
        if system == SystemKind::DLion {
            dlion_run = Some(m);
        }
    }

    // Show the per-link adaptation from Virginia's point of view.
    let m = dlion_run.expect("DLion ran");
    println!("\nDLion mean gradient entries per message, Virginia -> each region:");
    for dst in 1..6 {
        let xs: Vec<f64> = m
            .link_trace
            .iter()
            .filter(|s| s.src == 0 && s.dst == dst)
            .map(|s| s.entries as f64)
            .collect();
        let mean = if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        println!(
            "  -> {:<9} ({:>3.0} Mbps): {:>6.0} entries",
            region_name(dst),
            dlion::microcloud::REGION_MBPS[0][dst],
            mean
        );
    }
}
