//! Heterogeneous micro-clouds: the paper's headline scenario.
//!
//! Six micro-clouds with unequal CPU capacity (24/24/12/12/6/6 cores) and
//! unequal WAN bandwidth train the Cipher model together. All five systems
//! run in both Hetero SYS A (powerful workers have fat links) and Hetero
//! SYS B (powerful workers have thin links), printing an accuracy
//! comparison plus DLion's batch-size adaptation.
//!
//! ```text
//! cargo run --release --example heterogeneous_microclouds [duration_secs]
//! ```

use dlion::prelude::*;

fn main() {
    let duration: f64 = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("duration must be a number"))
        .unwrap_or(600.0);

    println!("Training Cipher for {duration} virtual seconds per run\n");
    for env in [EnvId::HeteroSysA, EnvId::HeteroSysB] {
        println!("### {} ###", env.name());
        println!(
            "{:<10} {:>10} {:>12} {:>14}",
            "system", "accuracy", "iterations", "grad MB sent"
        );
        let mut dlion_metrics = None;
        for system in SystemKind::headline() {
            let mut cfg = RunConfig::paper_default(system, ClusterKind::Cpu);
            cfg.duration = duration;
            let m = run_env(&cfg, env);
            println!(
                "{:<10} {:>10.3} {:>12} {:>14.0}",
                m.system,
                m.tail_mean_acc(3),
                m.total_iterations(),
                m.grad_bytes / 1e6
            );
            if system == SystemKind::DLion {
                dlion_metrics = Some(m);
            }
        }
        let m = dlion_metrics.expect("DLion ran");
        println!("\nDLion's LBS assignments over time (ΣLBS = GBS):");
        for (t, parts) in m.lbs_trace.iter().take(8) {
            println!(
                "  t={t:>6.0}s  LBS={parts:?}  GBS={}",
                parts.iter().sum::<usize>()
            );
        }
        println!();
    }
}
