//! Dynamic resources: compute capacity and bandwidth that change while the
//! cluster trains (§5.2.6 of the paper).
//!
//! Builds a custom environment whose CPU cores are cut in half mid-run
//! (someone else's job lands on the micro-cloud — the `stress` analogue)
//! and whose WAN links later degrade (the `tc` analogue), then shows DLion
//! re-profiling workers, re-balancing batch sizes and shrinking its partial
//! gradients, next to Baseline which just slows down.
//!
//! ```text
//! cargo run --release --example dynamic_resources
//! ```

use dlion::microcloud::{CPU_COST_PER_SAMPLE, CPU_OVERHEAD, WAN_LATENCY};
use dlion::prelude::*;

fn build_env() -> (ComputeModel, NetworkModel) {
    let n = 6;
    // Workers 0-2 lose half their cores at t=250 s.
    let caps: Vec<PiecewiseConst> = (0..n)
        .map(|w| {
            if w < 3 {
                PiecewiseConst::steps(vec![(0.0, 24.0), (250.0, 12.0)])
            } else {
                PiecewiseConst::constant(24.0)
            }
        })
        .collect();
    let compute = ComputeModel::new(caps, CPU_COST_PER_SAMPLE, CPU_OVERHEAD);
    // All links run at 80 Mbps until t=400 s, then drop to 25 Mbps.
    let mut net = NetworkModel::uniform(n, 80.0, WAN_LATENCY);
    let link = PiecewiseConst::steps(vec![(0.0, 80.0), (400.0, 25.0)]);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                net.set_link(i, j, link.clone());
            }
        }
    }
    (compute, net)
}

fn main() {
    let duration = 800.0;
    for system in [SystemKind::Baseline, SystemKind::DLion] {
        let (compute, net) = build_env();
        let mut cfg = RunConfig::paper_default(system, ClusterKind::Cpu);
        cfg.duration = duration;
        cfg.profile_interval = 50.0;
        cfg.trace_links = true;
        let m = dlion::core::run_with_models(&cfg, compute, net, "dynamic demo");
        println!("--- {} ---", m.system);
        println!("  final accuracy: {:.3}", m.tail_mean_acc(3));
        println!("  iterations: {:?}", m.iterations);
        if !m.lbs_trace.is_empty() {
            println!("  LBS before/after the compute cut at t=250 s:");
            for (t, parts) in &m.lbs_trace {
                if (*t - 200.0).abs() < 55.0 || (*t - 300.0).abs() < 55.0 {
                    println!("    t={t:>5.0}s  {parts:?}");
                }
            }
        }
        // Average partial-gradient size before and after the bandwidth drop.
        let avg_entries = |lo: f64, hi: f64| -> f64 {
            let xs: Vec<f64> = m
                .link_trace
                .iter()
                .filter(|s| s.time >= lo && s.time < hi)
                .map(|s| s.entries as f64)
                .collect();
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        println!(
            "  mean gradient entries/message @80 Mbps: {:.0}, @25 Mbps: {:.0}\n",
            avg_entries(100.0, 400.0),
            avg_entries(450.0, 800.0)
        );
    }
}
