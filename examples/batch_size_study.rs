//! Batch-size dynamics study (supports the GBS controller design):
//! for several global batch sizes, train single-process SGD at the paper's
//! fixed learning rate and report accuracy versus *updates* and versus
//! *samples processed*. Shows where larger batches lift the noise plateau
//! and where they just starve the update count.
//!
//! ```text
//! cargo run --release --example batch_size_study [sample_budget]
//! ```

use dlion::prelude::*;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("budget"))
        .unwrap_or(600_000);
    let train = 24_000;
    let ds = Dataset::synth_vision(train + 2_000, 7);
    let test: Vec<usize> = (train..train + 1000).collect();

    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>10}",
        "batch", "updates", "acc@25%", "acc@50%", "acc@100%"
    );
    for batch in [32usize, 192, 768, 2400] {
        let mut rng = DetRng::seed_from_u64(1);
        let mut model = ModelSpec::Cipher.build(&ds.sample_shape(), ds.classes(), &mut rng);
        let updates = budget / batch;
        let mut marks = Vec::new();
        for u in 0..updates {
            let idx: Vec<usize> = (0..batch).map(|_| rng.index(train)).collect();
            let (x, y) = ds.batch(&idx);
            let (_, grads) = model.forward_backward(&x, &y);
            model.apply_dense_update(&grads, -0.3);
            if u == updates / 4 || u == updates / 2 || u == updates - 1 {
                marks.push(model.evaluate(&ds, &test, 250).accuracy);
            }
        }
        while marks.len() < 3 {
            marks.push(f64::NAN);
        }
        println!(
            "{:>6} {:>9} {:>10.3} {:>10.3} {:>10.3}",
            batch, updates, marks[0], marks[1], marks[2]
        );
    }
}
