//! The Amazon GPU cluster scenario (§5.2.2): MobileNet-class training where
//! powerful GPU compute plus a 17 MB model makes the *network* the
//! bottleneck even on a LAN.
//!
//! Compares the four systems of Figure 12 in Homo C (6×p2.xlarge, LAN) and
//! Hetero SYS C (2×p2.8xlarge + 4×p2.xlarge over WAN) and prints how much
//! of a dense exchange each link can actually sustain.
//!
//! ```text
//! cargo run --release --example gpu_cluster [duration_secs]
//! ```

use dlion::core::report;
use dlion::prelude::*;

fn main() {
    let duration: f64 = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("duration"))
        .unwrap_or(200.0);

    // Show the bottleneck arithmetic first.
    let spec = EnvId::HomoC.spec();
    let compute = spec.compute_model();
    let iter = compute.iter_time(0, 32, 0.0);
    let comm = 5.0 * dlion::simnet::transfer_seconds(17e6, 1000.0);
    println!("GPU iteration (LBS 32): {iter:.2} s; dense 17 MB to 5 peers: {comm:.2} s");
    println!("=> even the 1 Gbps LAN cannot keep up with dense exchange\n");

    for env in [EnvId::HomoC, EnvId::HeteroSysC] {
        println!("### {} ({} virtual s) ###", env.name(), duration);
        for system in [
            SystemKind::Hop,
            SystemKind::Gaia,
            SystemKind::Ako,
            SystemKind::DLion,
        ] {
            let mut cfg = RunConfig::paper_default(system, ClusterKind::Gpu);
            cfg.duration = duration;
            cfg.eval_interval = (duration / 5.0).max(20.0);
            let m = run_env(&cfg, env);
            println!("{}", report::one_line(&m));
        }
        println!();
    }
}
