//! Extending the framework: plug in a *custom* gradient-exchange strategy.
//!
//! The paper's Table 1 claims new systems drop into DLion's framework with
//! a handful of lines. This example proves the same property for the Rust
//! reproduction: a "random-k" sparsifier (send k uniformly random gradient
//! entries per variable — a common baseline from the gradient-compression
//! literature) implemented in ~30 lines, then raced against DLion's Max N
//! on a constrained WAN.
//!
//! ```text
//! cargo run --release --example custom_strategy
//! ```

use dlion::core::messages::{GradData, GradMsg};
use dlion::core::strategy::{ExchangeStrategy, PeerUpdate, StrategyCtx};
use dlion::core::sync::SyncPolicy;
use dlion::core::worker::Worker;
use dlion::core::ClusterRunner;
use dlion::prelude::*;

/// Sends `k` random entries of each weight variable per iteration.
struct RandomK {
    k: usize,
    rng: DetRng,
}

impl ExchangeStrategy for RandomK {
    fn name(&self) -> &'static str {
        "RandomK"
    }

    fn sync_policy(&self) -> SyncPolicy {
        SyncPolicy::BoundedStaleness {
            bound: 5,
            backup_workers: 0,
        }
    }

    fn generate_partial_gradients(
        &mut self,
        ctx: &StrategyCtx,
        grads: &[Tensor],
        _model: &dlion::nn::Model,
    ) -> Vec<PeerUpdate> {
        let vars: Vec<SparseVec> = grads
            .iter()
            .map(|g| {
                let n = g.numel();
                let k = self.k.min(n);
                let mut idx = self.rng.sample_indices(n, k);
                idx.sort_unstable();
                SparseVec {
                    values: idx.iter().map(|&i| g.data()[i]).collect(),
                    indices: idx.into_iter().map(|i| i as u32).collect(),
                    dense_len: n,
                }
            })
            .collect();
        ctx.peers()
            .map(|peer| PeerUpdate {
                peer,
                msg: GradMsg {
                    iteration: ctx.iteration,
                    lbs: ctx.lbs,
                    data: GradData::Sparse(vars.clone()),
                    n_used: 0.0,
                },
            })
            .collect()
    }
}

fn main() {
    let duration = 900.0;
    let env = EnvId::HomoB; // 50 Mbps WAN

    // DLion for reference.
    let mut cfg = RunConfig::paper_default(SystemKind::DLion, ClusterKind::Cpu);
    cfg.duration = duration;
    let dlion = run_env(&cfg, env);

    // Same cluster, custom strategy — swap the plugin on each worker.
    let mut cfg = RunConfig::paper_default(SystemKind::Baseline, ClusterKind::Cpu);
    cfg.duration = duration;
    let spec = env.spec();
    let mut runner = ClusterRunner::new(cfg, spec.compute_model(), spec.network_model(), spec.name);
    runner.for_each_worker(|w: &mut Worker| {
        w.strategy = Box::new(RandomK {
            k: 120,
            rng: DetRng::seed_from_u64(1000 + w.id as u64),
        });
    });
    let randk = runner.run();

    println!("{:<8} {:>10} {:>12}", "system", "accuracy", "grad MB");
    for m in [&randk, &dlion] {
        println!(
            "{:<8} {:>10.3} {:>12.0}",
            if m.system == "Baseline" {
                "RandomK"
            } else {
                m.system.as_str()
            },
            m.tail_mean_acc(3),
            m.grad_bytes / 1e6
        );
    }
    println!("\nMax N prioritizes large-magnitude entries, so it should beat");
    println!("random sparsification at comparable byte budgets.");
}
