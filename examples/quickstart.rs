//! Quickstart: simulate a 6-worker micro-cloud cluster training the Cipher
//! model, comparing DLion against the dense BSP baseline.
//!
//! ```text
//! cargo run --release --example quickstart [duration_secs] [env]
//! ```
//!
//! `env` is one of: homo-a, homo-b, hetero-sys-a, hetero-sys-b (default
//! homo-b — a bandwidth-constrained WAN where DLion's techniques matter).

use dlion_core::{run_env, RunConfig, SystemKind};
use dlion_microcloud::{ClusterKind, EnvId};

fn parse_env(s: &str) -> EnvId {
    match s {
        "homo-a" => EnvId::HomoA,
        "homo-b" => EnvId::HomoB,
        "hetero-sys-a" => EnvId::HeteroSysA,
        "hetero-sys-b" => EnvId::HeteroSysB,
        other => panic!("unknown env {other}; use homo-a|homo-b|hetero-sys-a|hetero-sys-b"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: f64 = args
        .next()
        .map(|v| v.parse().expect("duration"))
        .unwrap_or(600.0);
    let env = parse_env(&args.next().unwrap_or_else(|| "homo-b".into()));

    println!("Simulating {} for {duration} virtual seconds\n", env.name());
    for system in [SystemKind::Baseline, SystemKind::DLion] {
        let mut cfg = RunConfig::paper_default(system, ClusterKind::Cpu);
        cfg.duration = duration;
        cfg.eval_interval = (duration / 10.0).max(30.0);
        let m = run_env(&cfg, env);
        println!("--- {} ---", m.system);
        println!("  iterations per worker: {:?}", m.iterations);
        println!(
            "  gradient traffic: {:.1} MB, weight traffic: {:.1} MB",
            m.grad_bytes / 1e6,
            m.weight_bytes / 1e6
        );
        println!("  accuracy over time:");
        for (e, t) in m.eval_times.iter().enumerate() {
            println!(
                "    t={t:>6.0}s  mean acc {:.3}  (per-worker std {:.4})",
                m.mean_acc(e),
                {
                    let row = &m.worker_acc[e];
                    dlion_tensor::stats::std_dev(row)
                }
            );
        }
        println!("  final accuracy: {:.3}\n", m.final_mean_acc());
    }
}
